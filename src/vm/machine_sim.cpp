#include "vm/machine_sim.h"

#include "support/statistic.h"

namespace llva {

// Defined in interpreter.cpp — both engines count failed trap
// deliveries into one counter (the registry resolves names to the
// first registrant, so a second definition would be shadowed).
extern Statistic NumTrapHandlerMissing;

namespace {

constexpr size_t kMaxCallDepth = 2048;

Statistic NumProfileSamples(
    "llee.profile_samples",
    "Block executions recorded into the runtime edge profile");

/** An invoke-style call site: a call with explicit handler blocks. */
bool
isInvokeSite(const MachineInstr &mi)
{
    if (!mi.isCall)
        return false;
    unsigned blocks = 0;
    for (const MOperand &op : mi.ops)
        if (op.kind == MOperand::Block)
            ++blocks;
    return blocks >= 2;
}

MachineBasicBlock *
invokeBlockOperand(const MachineInstr &mi, unsigned which)
{
    unsigned seen = 0;
    for (const MOperand &op : mi.ops) {
        if (op.kind != MOperand::Block)
            continue;
        if (seen == which)
            return op.block;
        ++seen;
    }
    panic("invoke site lacks handler blocks");
}

} // namespace

ExecResult
MachineSimulator::run(const Function *f,
                      const std::vector<RtValue> &args)
{
    ExecResult result = runInternal(f, args);

    // Trap-handler dispatch (paper Section 3.5).
    if (result.trap != TrapKind::None) {
        unsigned trapno = static_cast<unsigned>(result.trap);
        uint64_t handler = ctx_.trapHandler(trapno);
        if (handler) {
            if (const Function *hf =
                    ctx_.memory().functionAt(handler)) {
                std::vector<RtValue> hargs = {
                    RtValue::ofInt(trapno), RtValue::ofInt(0)};
                ExecResult hr = runInternal(hf, hargs);
                result.instructionsExecuted = executed_;
                // The handler's own outcome must not be swallowed:
                // a trap raised inside the handler supersedes the
                // trap it was handling, and an unwind escaping the
                // handler surfaces as an escaped unwind.
                if (hr.trap != TrapKind::None)
                    result.trap = hr.trap;
                if (hr.unwound)
                    result.unwound = true;
            } else {
                // A registered address that no longer names a
                // function (SMC moved it, or it was bogus) means
                // the handler silently never runs — count it.
                ++NumTrapHandlerMissing;
            }
        }
    }
    return result;
}

ExecResult
MachineSimulator::interpretFallback(const Function *f,
                                    const std::vector<RtValue> &args,
                                    uint64_t stackBase)
{
    Interpreter interp(ctx_);
    if (limit_) {
        // Hand the interpreter exactly the remaining budget. A
        // drained budget (executed_ >= limit_) must not buy a free
        // instruction: any defined function executes at least one,
        // so the handoff itself exceeds the limit.
        if (executed_ >= limit_)
            fatal("simulator instruction limit exceeded");
        interp.setInstructionLimit(limit_ - executed_);
    }
    ExecResult r = interp.invoke(f, args, stackBase);
    executed_ += r.instructionsExecuted;
    interpreted_ += r.instructionsExecuted;
    // The interpreted code may have requested SMC invalidations;
    // apply them before native dispatch resumes.
    for (const Function *inv : ctx_.takeInvalidations())
        code_.invalidate(inv);
    return r;
}

ExecResult
MachineSimulator::runInternal(const Function *f,
                              const std::vector<RtValue> &args)
{
    Target &target = code_.target();
    ExecResult result;

    // Apply pending SMC invalidations before dispatch.
    for (const Function *inv : ctx_.takeInvalidations())
        code_.invalidate(inv);
    if (const Function *repl = ctx_.redirectFor(f))
        f = repl;

    SimState state;
    state.mem = &ctx_.memory();
    state.globalAddrs = &ctx_.globalAddrs();
    state.sp = ctx_.memory().stackTop() - 4096; // synthetic caller

    target.writeArgs(state, f->functionType(), args);

    const MachineFunction *mf = code_.get(f);
    if (!mf) {
        // The entry function itself is pinned to the interpreter
        // tier; run it there with the default stack base.
        ExecResult r = interpretFallback(f, args, 0);
        r.instructionsExecuted = executed_;
        return r;
    }
    MachineBasicBlock *block = mf->blocks().front().get();
    size_t index = 0;
    std::vector<Frame> frames;

    const bool threaded = dispatch_ == Dispatch::Threaded;

    // Superblock chaining state: non-null while the current frame
    // runs the live trace-tier body of its function under threaded
    // dispatch.
    ChainedFunction *chain = nullptr;
    ChainedBlock *cb = nullptr;

    // Profile hook: record a block entry (and, within one function,
    // the edge taken into it). Machine block names mirror the source
    // blocks' names, so these are the same stable IDs the trace
    // formation resolves on the IR. `from == nullptr` marks entries
    // with no intra-function predecessor (call dispatch, invoke
    // resumption). Threaded dispatch uses the hashes cached at
    // translation time; the legacy engine keeps its original
    // rehash-per-event cost as the measurable baseline. Events are
    // recorded every sampleInterval_-th occurrence with matching
    // weight, so totals stay in execution units.
    auto noteBlock = [&](const MachineFunction *in,
                         const MachineBasicBlock *from,
                         const MachineBasicBlock *to) {
        if (!profile_)
            return;
        if (--sampleCountdown_)
            return;
        sampleCountdown_ = sampleInterval_;
        if (threaded) {
            profile_->noteId(
                from ? BlockId{in->nameHash(), from->nameHash()}
                     : BlockId{},
                BlockId{in->nameHash(), to->nameHash()},
                sampleInterval_);
        } else {
            uint64_t fnHash = functionId(in->name());
            profile_->noteId(
                from ? BlockId{fnHash, fnv1a(from->name())}
                     : BlockId{},
                BlockId{fnHash, fnv1a(to->name())}, sampleInterval_);
        }
        NumProfileSamples += sampleInterval_;
    };


    // Re-derive the chaining state after any control transfer that
    // may have changed the current function (call, return, unwind)
    // or retired its body (SMC invalidation, promotion). Only the
    // *live* body of a trace-tier function chains: a retired body
    // keeps executing, unchained, until its activation ends.
    auto syncChain = [&]() {
        chain = nullptr;
        cb = nullptr;
        if (!threaded)
            return;
        // Fast path for the steady state (every call/return runs
        // through here): one lookup resolves an already-built live
        // chain. The tier + installed-body checks only run when
        // that misses, to decide first-time chain creation.
        chain = code_.findChain(mf);
        if (!chain) {
            if (code_.tierOf(mf->source()) != kTierTrace)
                return;
            if (code_.cached(mf->source()) != mf)
                return;
            chain = code_.chainFor(mf);
        }
        cb = chain->blockFor(block);
    };

    noteBlock(mf, nullptr, block);
    syncChain();

    // Pop machine frames to the nearest invoke-style call site and
    // resume at its handler block; false if the unwind escapes.
    auto unwindFrames = [&]() -> bool {
        while (!frames.empty()) {
            Frame fr = frames.back();
            frames.pop_back();
            const MachineInstr &site = *fr.block->instrs()[fr.index];
            if (isInvokeSite(site)) {
                mf = fr.mf;
                state.sp = fr.spAtCall;
                block = invokeBlockOperand(site, 1);
                index = 0;
                noteBlock(mf, nullptr, block);
                syncChain();
                return true;
            }
        }
        return false;
    };

    uint64_t start_count = executed_;
    (void)start_count;

    while (true) {
        const MachineInstr *mip = nullptr;

        if (cb) {
            // Superblock fast path: cached handlers over flattened
            // blocks, transitions through patched links — no map
            // lookups, no hashing, no dispatch switch. Falls out
            // only on a call/return/trap/unwind side exit. Chained
            // blocks are pointer-stable and their code arrays never
            // resize after build, so the walk stays in registers;
            // `index` is synced back on every exit.
            ChainedInstr *ip = cb->code.data() + index;
            const ChainedInstr *end =
                cb->code.data() + cb->code.size();
            // The instruction counter and the profile-sampling
            // countdown live in locals for the duration of the
            // inner loop: the indirect handler call clobbers
            // memory, so member fields would be reloaded and
            // stored on every instruction, while loop-local state
            // survives in callee-saved registers. Both are synced
            // back on every exit from the loop. With no limit set
            // the sentinel makes the budget check a single
            // never-taken compare.
            uint64_t executed = executed_;
            const uint64_t limit = limit_ ? limit_ : ~uint64_t(0);
            uint64_t countdown = sampleCountdown_;
            EdgeProfile *profile = profile_;
            // Block-entry profile event over the cached IDs; the
            // same sampling discipline as noteBlock, against the
            // loop-local countdown.
            auto noteChained = [&](const ChainedBlock *from,
                                   const ChainedBlock *to) {
                if (!profile)
                    return;
                if (--countdown)
                    return;
                countdown = sampleInterval_;
                profile_->noteId(from->id, to->id, sampleInterval_);
                NumProfileSamples += sampleInterval_;
            };
            for (;;) {
                if (ip == end) {
                    ChainedBlock *next = cb->fall;
                    if (!next)
                        next = chain->linkFallthrough(cb);
                    noteChained(cb, next);
                    cb = next;
                    block = cb->mbb;
                    ip = cb->code.data();
                    end = ip + cb->code.size();
                    continue;
                }
                if (++executed > limit) {
                    index = size_t(ip - cb->code.data());
                    executed_ = executed;
                    sampleCountdown_ = countdown;
                    fatal("simulator instruction limit exceeded");
                }
                state.next = SimState::Next::Fall;
                ip->fn(*ip->mi, state);
                if (state.next == SimState::Next::Fall) {
                    ++ip;
                    continue;
                }
                if (state.next == SimState::Next::Branch) {
                    ChainedInstr &ci = *ip;
                    ChainedBlock *next =
                        ci.link && ci.link->mbb == state.branchTarget
                            ? ci.link
                            : chain->linkBranch(ci,
                                                state.branchTarget);
                    noteChained(cb, next);
                    cb = next;
                    block = cb->mbb;
                    ip = cb->code.data();
                    end = ip + cb->code.size();
                    continue;
                }
                mip = ip->mi;
                index = size_t(ip - cb->code.data());
                executed_ = executed;
                sampleCountdown_ = countdown;
                break;
            }
        } else {
            if (index >= block->instrs().size()) {
                // Elided fallthrough jump: continue with the next
                // block in layout order.
                size_t next = block->index() + 1;
                LLVA_ASSERT(next < mf->blocks().size(),
                            "machine function fell off the end (%s)",
                            mf->name().c_str());
                MachineBasicBlock *prev = block;
                block = mf->blocks()[next].get();
                index = 0;
                noteBlock(mf, prev, block);
                continue;
            }
            const MachineInstr &mi = *block->instrs()[index];
            ++executed_;
            if (limit_ && executed_ > limit_)
                fatal("simulator instruction limit exceeded");
            if (threaded) {
                // Direct-threaded dispatch: resolve the handler
                // once, then one indirect call per execution. Only
                // next is re-armed — handlers write every consumer
                // field of the Next value they request.
                ExecFn fn = mi.exec;
                if (!fn)
                    fn = mi.exec = target.handlerFor(mi);
                state.next = SimState::Next::Fall;
                fn(mi, state);
            } else {
                state.reset();
                target.execute(mi, state);
            }
            mip = &mi;
        }

        const MachineInstr &mi = *mip;
        switch (state.next) {
          case SimState::Next::Fall:
            ++index;
            break;

          case SimState::Next::Branch:
            noteBlock(mf, block, state.branchTarget);
            block = state.branchTarget;
            index = 0;
            // Branches carry the loop back-edges, so this is where a
            // function's sample count can cross the watermark; the
            // running activation keeps its body (the replaced
            // translation is retired, not destroyed).
            if (profile_)
                code_.maybePromote(mf->source());
            break;

          case SimState::Next::Trap:
            result.trap = state.trapKind;
            result.instructionsExecuted = executed_;
            return result;

          case SimState::Next::Return: {
            if (frames.empty()) {
                result.value = target.readReturn(
                    state, f->functionType()->returnType());
                result.instructionsExecuted = executed_;
                return result;
            }
            Frame fr = frames.back();
            frames.pop_back();
            mf = fr.mf;
            const MachineInstr &site =
                *fr.block->instrs()[fr.index];
            if (isInvokeSite(site)) {
                block = invokeBlockOperand(site, 0);
                index = 0;
                noteBlock(mf, nullptr, block);
            } else {
                block = fr.block;
                index = fr.index + 1;
            }
            syncChain();
            break;
          }

          case SimState::Next::Call: {
            const Function *callee = state.callTarget;
            if (!callee) {
                callee = ctx_.memory().functionAt(state.callAddr);
                if (!callee) {
                    result.trap = TrapKind::BadIndirectCall;
                    result.instructionsExecuted = executed_;
                    return result;
                }
            }
            if (const Function *repl = ctx_.redirectFor(callee))
                callee = repl;

            if (callee->isDeclaration()) {
                const RuntimeHandler *h =
                    ctx_.handlerFor(callee->name());
                if (!h)
                    fatal("call to unresolved external %%%s",
                          callee->name().c_str());
                std::vector<RtValue> hargs =
                    target.readArgs(state, callee->functionType());
                RtValue rv = (*h)(ctx_, hargs);
                target.writeReturn(
                    state, callee->functionType()->returnType(),
                    rv);
                // Consume any pending SMC invalidations the handler
                // produced before the next dispatch.
                for (const Function *inv :
                     ctx_.takeInvalidations())
                    code_.invalidate(inv);
                if (isInvokeSite(mi)) {
                    block = invokeBlockOperand(mi, 0);
                    index = 0;
                    noteBlock(mf, nullptr, block);
                } else {
                    ++index;
                }
                // The handler may have invalidated this very
                // function: its chain is now severed and must not
                // be re-entered.
                syncChain();
                break;
            }

            if (frames.size() >= kMaxCallDepth ||
                state.sp < ctx_.memory().stackLimit() + 4096) {
                result.trap = TrapKind::StackOverflow;
                result.instructionsExecuted = executed_;
                return result;
            }

            const MachineFunction *cmf = code_.get(callee);
            if (!cmf) {
                // Callee is pinned to the interpreter tier: bridge
                // the call — read the arguments the native caller
                // set up, interpret with allocas below the caller's
                // stack pointer, and write the return back into the
                // native calling convention.
                std::vector<RtValue> cargs =
                    target.readArgs(state, callee->functionType());
                ExecResult r =
                    interpretFallback(callee, cargs, state.sp);
                if (r.trap != TrapKind::None) {
                    result.trap = r.trap;
                    result.instructionsExecuted = executed_;
                    return result;
                }
                if (r.unwound) {
                    if (!unwindFrames()) {
                        result.unwound = true;
                        result.instructionsExecuted = executed_;
                        return result;
                    }
                    break;
                }
                target.writeReturn(
                    state, callee->functionType()->returnType(),
                    r.value);
                if (isInvokeSite(mi)) {
                    block = invokeBlockOperand(mi, 0);
                    index = 0;
                    noteBlock(mf, nullptr, block);
                } else {
                    ++index;
                }
                // interpretFallback applied any invalidations the
                // interpreted code requested.
                syncChain();
                break;
            }

            frames.push_back({mf, block, index, state.sp});
            mf = cmf;
            block = mf->blocks().front().get();
            index = 0;
            noteBlock(mf, nullptr, block);
            syncChain();
            break;
          }

          case SimState::Next::Unwind: {
            // Pop frames to the nearest invoke-style call site.
            if (!unwindFrames()) {
                result.unwound = true;
                result.instructionsExecuted = executed_;
                return result;
            }
            break;
          }
        }
    }
}

} // namespace llva
