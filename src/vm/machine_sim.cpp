#include "vm/machine_sim.h"

#include "support/statistic.h"

namespace llva {

namespace {

constexpr size_t kMaxCallDepth = 2048;

Statistic NumProfileSamples(
    "llee.profile_samples",
    "Block executions recorded into the runtime edge profile");

/** An invoke-style call site: a call with explicit handler blocks. */
bool
isInvokeSite(const MachineInstr &mi)
{
    if (!mi.isCall)
        return false;
    unsigned blocks = 0;
    for (const MOperand &op : mi.ops)
        if (op.kind == MOperand::Block)
            ++blocks;
    return blocks >= 2;
}

MachineBasicBlock *
invokeBlockOperand(const MachineInstr &mi, unsigned which)
{
    unsigned seen = 0;
    for (const MOperand &op : mi.ops) {
        if (op.kind != MOperand::Block)
            continue;
        if (seen == which)
            return op.block;
        ++seen;
    }
    panic("invoke site lacks handler blocks");
}

} // namespace

ExecResult
MachineSimulator::run(const Function *f,
                      const std::vector<RtValue> &args)
{
    ExecResult result = runInternal(f, args);

    // Trap-handler dispatch (paper Section 3.5).
    if (result.trap != TrapKind::None) {
        unsigned trapno = static_cast<unsigned>(result.trap);
        uint64_t handler = ctx_.trapHandler(trapno);
        if (handler) {
            if (const Function *hf =
                    ctx_.memory().functionAt(handler)) {
                std::vector<RtValue> hargs = {
                    RtValue::ofInt(trapno), RtValue::ofInt(0)};
                runInternal(hf, hargs);
                result.instructionsExecuted = executed_;
            }
        }
    }
    return result;
}

ExecResult
MachineSimulator::interpretFallback(const Function *f,
                                    const std::vector<RtValue> &args,
                                    uint64_t stackBase)
{
    Interpreter interp(ctx_);
    if (limit_)
        interp.setInstructionLimit(
            limit_ > executed_ ? limit_ - executed_ : 1);
    ExecResult r = interp.invoke(f, args, stackBase);
    executed_ += r.instructionsExecuted;
    interpreted_ += r.instructionsExecuted;
    // The interpreted code may have requested SMC invalidations;
    // apply them before native dispatch resumes.
    for (const Function *inv : ctx_.takeInvalidations())
        code_.invalidate(inv);
    return r;
}

ExecResult
MachineSimulator::runInternal(const Function *f,
                              const std::vector<RtValue> &args)
{
    Target &target = code_.target();
    ExecResult result;

    // Apply pending SMC invalidations before dispatch.
    for (const Function *inv : ctx_.takeInvalidations())
        code_.invalidate(inv);
    if (const Function *repl = ctx_.redirectFor(f))
        f = repl;

    SimState state;
    state.mem = &ctx_.memory();
    state.globalAddrs = &ctx_.globalAddrs();
    state.sp = ctx_.memory().stackTop() - 4096; // synthetic caller

    target.writeArgs(state, f->functionType(), args);

    const MachineFunction *mf = code_.get(f);
    if (!mf) {
        // The entry function itself is pinned to the interpreter
        // tier; run it there with the default stack base.
        ExecResult r = interpretFallback(f, args, 0);
        r.instructionsExecuted = executed_;
        return r;
    }
    MachineBasicBlock *block = mf->blocks().front().get();
    size_t index = 0;
    std::vector<Frame> frames;

    // Profile hook: record a block entry (and, within one function,
    // the edge taken into it). Machine block names mirror the source
    // blocks' names, so these are the same stable IDs the trace
    // formation resolves on the IR. `from == nullptr` marks entries
    // with no intra-function predecessor (call dispatch, invoke
    // resumption).
    auto noteBlock = [&](const MachineFunction *in,
                         const MachineBasicBlock *from,
                         const MachineBasicBlock *to) {
        if (!profile_)
            return;
        uint64_t fnHash = functionId(in->name());
        profile_->noteId(from ? BlockId{fnHash, fnv1a(from->name())}
                              : BlockId{},
                         BlockId{fnHash, fnv1a(to->name())});
        ++NumProfileSamples;
    };
    noteBlock(mf, nullptr, block);

    // Pop machine frames to the nearest invoke-style call site and
    // resume at its handler block; false if the unwind escapes.
    auto unwindFrames = [&]() -> bool {
        while (!frames.empty()) {
            Frame fr = frames.back();
            frames.pop_back();
            const MachineInstr &site = *fr.block->instrs()[fr.index];
            if (isInvokeSite(site)) {
                mf = fr.mf;
                state.sp = fr.spAtCall;
                block = invokeBlockOperand(site, 1);
                index = 0;
                noteBlock(mf, nullptr, block);
                return true;
            }
        }
        return false;
    };

    uint64_t start_count = executed_;
    (void)start_count;

    while (true) {
        if (index >= block->instrs().size()) {
            // Elided fallthrough jump: continue with the next block
            // in layout order.
            size_t next = block->index() + 1;
            LLVA_ASSERT(next < mf->blocks().size(),
                        "machine function fell off the end (%s)",
                        mf->name().c_str());
            MachineBasicBlock *prev = block;
            block = mf->blocks()[next].get();
            index = 0;
            noteBlock(mf, prev, block);
            continue;
        }
        const MachineInstr &mi = *block->instrs()[index];
        state.reset();
        target.execute(mi, state);
        ++executed_;
        if (limit_ && executed_ > limit_)
            fatal("simulator instruction limit exceeded");

        switch (state.next) {
          case SimState::Next::Fall:
            ++index;
            break;

          case SimState::Next::Branch:
            noteBlock(mf, block, state.branchTarget);
            block = state.branchTarget;
            index = 0;
            // Branches carry the loop back-edges, so this is where a
            // function's sample count can cross the watermark; the
            // running activation keeps its body (the replaced
            // translation is retired, not destroyed).
            if (profile_)
                code_.maybePromote(mf->source());
            break;

          case SimState::Next::Trap:
            result.trap = state.trapKind;
            result.instructionsExecuted = executed_;
            return result;

          case SimState::Next::Return: {
            if (frames.empty()) {
                result.value = target.readReturn(
                    state, f->functionType()->returnType());
                result.instructionsExecuted = executed_;
                return result;
            }
            Frame fr = frames.back();
            frames.pop_back();
            mf = fr.mf;
            const MachineInstr &site =
                *fr.block->instrs()[fr.index];
            if (isInvokeSite(site)) {
                block = invokeBlockOperand(site, 0);
                index = 0;
                noteBlock(mf, nullptr, block);
            } else {
                block = fr.block;
                index = fr.index + 1;
            }
            break;
          }

          case SimState::Next::Call: {
            const Function *callee = state.callTarget;
            if (!callee) {
                callee = ctx_.memory().functionAt(state.callAddr);
                if (!callee) {
                    result.trap = TrapKind::BadIndirectCall;
                    result.instructionsExecuted = executed_;
                    return result;
                }
            }
            if (const Function *repl = ctx_.redirectFor(callee))
                callee = repl;

            if (callee->isDeclaration()) {
                const RuntimeHandler *h =
                    ctx_.handlerFor(callee->name());
                if (!h)
                    fatal("call to unresolved external %%%s",
                          callee->name().c_str());
                std::vector<RtValue> hargs =
                    target.readArgs(state, callee->functionType());
                RtValue rv = (*h)(ctx_, hargs);
                target.writeReturn(
                    state, callee->functionType()->returnType(),
                    rv);
                // Consume any pending SMC invalidations the handler
                // produced before the next dispatch.
                for (const Function *inv :
                     ctx_.takeInvalidations())
                    code_.invalidate(inv);
                if (isInvokeSite(mi)) {
                    block = invokeBlockOperand(mi, 0);
                    index = 0;
                    noteBlock(mf, nullptr, block);
                } else {
                    ++index;
                }
                break;
            }

            if (frames.size() >= kMaxCallDepth ||
                state.sp < ctx_.memory().stackLimit() + 4096) {
                result.trap = TrapKind::StackOverflow;
                result.instructionsExecuted = executed_;
                return result;
            }

            const MachineFunction *cmf = code_.get(callee);
            if (!cmf) {
                // Callee is pinned to the interpreter tier: bridge
                // the call — read the arguments the native caller
                // set up, interpret with allocas below the caller's
                // stack pointer, and write the return back into the
                // native calling convention.
                std::vector<RtValue> cargs =
                    target.readArgs(state, callee->functionType());
                ExecResult r =
                    interpretFallback(callee, cargs, state.sp);
                if (r.trap != TrapKind::None) {
                    result.trap = r.trap;
                    result.instructionsExecuted = executed_;
                    return result;
                }
                if (r.unwound) {
                    if (!unwindFrames()) {
                        result.unwound = true;
                        result.instructionsExecuted = executed_;
                        return result;
                    }
                    break;
                }
                target.writeReturn(
                    state, callee->functionType()->returnType(),
                    r.value);
                if (isInvokeSite(mi)) {
                    block = invokeBlockOperand(mi, 0);
                    index = 0;
                    noteBlock(mf, nullptr, block);
                } else {
                    ++index;
                }
                break;
            }

            frames.push_back({mf, block, index, state.sp});
            mf = cmf;
            block = mf->blocks().front().get();
            index = 0;
            noteBlock(mf, nullptr, block);
            break;
          }

          case SimState::Next::Unwind: {
            // Pop frames to the nearest invoke-style call site.
            if (!unwindFrames()) {
                result.unwound = true;
                result.instructionsExecuted = executed_;
                return result;
            }
            break;
          }
        }
    }
}

} // namespace llva
