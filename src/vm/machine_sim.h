/**
 * @file
 * MachineSimulator: the simulated hardware processor. Executes
 * translated machine code (x86-like or sparc-like) against the same
 * ExecutionContext as the interpreter, translating callees on demand
 * through the CodeManager — i.e. this is the JIT execution engine of
 * paper Section 5.2, with the hardware replaced by a functional
 * simulator so translated code actually runs and can be verified.
 *
 * Live-update support: every activation pins the CodeManager's
 * reclamation epoch for its duration (its call frames hold raw
 * MachineFunction pointers into bodies that a concurrent SMC
 * replacement may retire). Execution can also be paused
 * cooperatively — at an instruction-count watermark (setPauseAt) or
 * on request from another thread (requestPause) — which suspends
 * the activation at a block boundary; the suspended state is
 * resumable in-process (resume()) or serializable into a VM
 * checkpoint (serializeSuspended/restoreSuspended).
 */

#ifndef LLVA_VM_MACHINE_SIM_H
#define LLVA_VM_MACHINE_SIM_H

#include <atomic>

#include "support/byte_io.h"
#include "vm/code_manager.h"
#include "vm/interpreter.h" // ExecResult
#include "vm/runtime.h"

namespace llva {

class MachineSimulator
{
  public:
    /** How the inner loop dispatches instructions. */
    enum class Dispatch : uint8_t
    {
        /** The legacy engine: state.reset() + virtual execute()
         *  opcode switch per instruction, names rehashed on every
         *  profile event. Kept as the measurable baseline. */
        Switch,
        /** Direct-threaded handlers cached per instruction, plus
         *  chained superblocks for trace-tier functions. */
        Threaded,
    };

    MachineSimulator(ExecutionContext &ctx, CodeManager &code)
        : ctx_(ctx), code_(code)
    {}

    /** Releases the epoch pin of a still-suspended activation. */
    ~MachineSimulator();

    /** Run \p f to completion (JIT-translating on demand). */
    ExecResult run(const Function *f,
                   const std::vector<RtValue> &args = {});

    void setDispatch(Dispatch d) { dispatch_ = d; }
    Dispatch dispatch() const { return dispatch_; }

    /**
     * Sampled profiling: record every Nth block-entry event with
     * weight N (1 = exact counting, the default). Estimated totals
     * stay in execution units, so the promotion watermark needs no
     * rescaling, at 1/N the profile-map traffic.
     */
    void
    setProfileSampleInterval(uint64_t n)
    {
        sampleInterval_ = n ? n : 1;
        sampleCountdown_ = sampleInterval_;
    }

    /**
     * Collect an edge profile of the *translated* code while
     * executing (nullptr = off). Counts are keyed by stable block
     * IDs — machine blocks carry their source blocks' names through
     * instruction selection and the mcode cache — so the same
     * profile can seed trace formation on the IR and be persisted
     * across runs. Every profile event also gives the CodeManager a
     * chance to promote the hot function to the trace tier.
     */
    void setProfile(EdgeProfile *profile) { profile_ = profile; }

    /** Machine instructions executed across all run() calls
     *  (includes instructions interpreted via tier fallback). */
    uint64_t instructionsExecuted() const { return executed_; }

    /** Instructions executed by the interpreter tier of last resort
     *  on behalf of functions with no native translation. */
    uint64_t instructionsInterpreted() const { return interpreted_; }

    /** Cap on executed machine instructions (0 = unlimited). */
    void setInstructionLimit(uint64_t limit) { limit_ = limit; }

    // --- Cooperative pause / suspend --------------------------------------

    /**
     * Arm a pause once the cumulative executed-instruction count
     * reaches \p n (absolute, against instructionsExecuted(); 0
     * disarms). The pause lands at the next dispatch boundary —
     * run() then returns with ExecResult::paused set and the
     * activation saved for resume(). Instructions interpreted via
     * tier fallback are not pause points (the interpreter runs its
     * call to completion).
     */
    void
    setPauseAt(uint64_t n)
    {
        pauseAt_.store(n, std::memory_order_relaxed);
    }

    /** Request a pause from another thread (same landing rules as
     *  setPauseAt; cleared when the pause is taken). */
    void
    requestPause()
    {
        pauseFlag_.store(true, std::memory_order_relaxed);
    }

    /** True while an activation is suspended awaiting resume(). */
    bool paused() const { return suspended_.valid; }

    /** Continue a paused activation to completion (or to the next
     *  pause). Only valid while paused(). */
    ExecResult resume();

    /**
     * Serialize the suspended activation (registers, call frames,
     * current position) for a VM checkpoint. Frames are recorded by
     * function name + block/instruction index, validated against
     * block and instruction counts so a restore onto retranslated
     * code detects any shape mismatch. Only valid while paused().
     */
    void serializeSuspended(ByteWriter &w) const;

    /**
     * Rebuild a suspended activation from checkpoint bytes:
     * functions are resolved by name through the context's module
     * and (re)translated via the CodeManager, which must produce
     * bodies of the recorded shape — translation is deterministic
     * per (target, tier). Returns false (leaving the simulator not
     * paused) on any mismatch.
     */
    bool restoreSuspended(ByteReader &r);

  private:
    struct Frame
    {
        const MachineFunction *mf = nullptr;
        MachineBasicBlock *block = nullptr;
        size_t index = 0;      ///< instruction index of the call site
        uint64_t spAtCall = 0; ///< sp when the call was made
    };

    /** A paused activation, held between run() and resume(). */
    struct Suspended
    {
        bool valid = false;
        const Function *f = nullptr;
        SimState state;
        std::vector<Frame> frames;
        const MachineFunction *mf = nullptr;
        MachineBasicBlock *block = nullptr;
        size_t index = 0;
    };

    ExecResult runInternal(const Function *f,
                           const std::vector<RtValue> &args);

    /** Interpret \p f (no native translation) with allocas carved
     *  below \p stackBase; merges instruction accounting. */
    ExecResult interpretFallback(const Function *f,
                                 const std::vector<RtValue> &args,
                                 uint64_t stackBase);

    ExecutionContext &ctx_;
    CodeManager &code_;
    uint64_t executed_ = 0;
    uint64_t interpreted_ = 0;
    uint64_t limit_ = 0;
    EdgeProfile *profile_ = nullptr;
    Dispatch dispatch_ = Dispatch::Threaded;
    uint64_t sampleInterval_ = 1;
    uint64_t sampleCountdown_ = 1;

    // Pause/suspend state. The flag and watermark are atomics so a
    // chaos/control thread can arm them mid-run; everything else is
    // touched only by the executing thread.
    std::atomic<bool> pauseFlag_{false};
    std::atomic<uint64_t> pauseAt_{0};
    Suspended suspended_;
    bool resuming_ = false;
    uint64_t pausedPin_ = 0; ///< epoch pin carried across a pause
    bool hasPausedPin_ = false;
};

} // namespace llva

#endif // LLVA_VM_MACHINE_SIM_H
