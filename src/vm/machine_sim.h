/**
 * @file
 * MachineSimulator: the simulated hardware processor. Executes
 * translated machine code (x86-like or sparc-like) against the same
 * ExecutionContext as the interpreter, translating callees on demand
 * through the CodeManager — i.e. this is the JIT execution engine of
 * paper Section 5.2, with the hardware replaced by a functional
 * simulator so translated code actually runs and can be verified.
 */

#ifndef LLVA_VM_MACHINE_SIM_H
#define LLVA_VM_MACHINE_SIM_H

#include "vm/code_manager.h"
#include "vm/interpreter.h" // ExecResult
#include "vm/runtime.h"

namespace llva {

class MachineSimulator
{
  public:
    /** How the inner loop dispatches instructions. */
    enum class Dispatch : uint8_t
    {
        /** The legacy engine: state.reset() + virtual execute()
         *  opcode switch per instruction, names rehashed on every
         *  profile event. Kept as the measurable baseline. */
        Switch,
        /** Direct-threaded handlers cached per instruction, plus
         *  chained superblocks for trace-tier functions. */
        Threaded,
    };

    MachineSimulator(ExecutionContext &ctx, CodeManager &code)
        : ctx_(ctx), code_(code)
    {}

    /** Run \p f to completion (JIT-translating on demand). */
    ExecResult run(const Function *f,
                   const std::vector<RtValue> &args = {});

    void setDispatch(Dispatch d) { dispatch_ = d; }
    Dispatch dispatch() const { return dispatch_; }

    /**
     * Sampled profiling: record every Nth block-entry event with
     * weight N (1 = exact counting, the default). Estimated totals
     * stay in execution units, so the promotion watermark needs no
     * rescaling, at 1/N the profile-map traffic.
     */
    void
    setProfileSampleInterval(uint64_t n)
    {
        sampleInterval_ = n ? n : 1;
        sampleCountdown_ = sampleInterval_;
    }

    /**
     * Collect an edge profile of the *translated* code while
     * executing (nullptr = off). Counts are keyed by stable block
     * IDs — machine blocks carry their source blocks' names through
     * instruction selection and the mcode cache — so the same
     * profile can seed trace formation on the IR and be persisted
     * across runs. Every profile event also gives the CodeManager a
     * chance to promote the hot function to the trace tier.
     */
    void setProfile(EdgeProfile *profile) { profile_ = profile; }

    /** Machine instructions executed across all run() calls
     *  (includes instructions interpreted via tier fallback). */
    uint64_t instructionsExecuted() const { return executed_; }

    /** Instructions executed by the interpreter tier of last resort
     *  on behalf of functions with no native translation. */
    uint64_t instructionsInterpreted() const { return interpreted_; }

    /** Cap on executed machine instructions (0 = unlimited). */
    void setInstructionLimit(uint64_t limit) { limit_ = limit; }

  private:
    struct Frame
    {
        const MachineFunction *mf = nullptr;
        MachineBasicBlock *block = nullptr;
        size_t index = 0;      ///< instruction index of the call site
        uint64_t spAtCall = 0; ///< sp when the call was made
    };

    ExecResult runInternal(const Function *f,
                           const std::vector<RtValue> &args);

    /** Interpret \p f (no native translation) with allocas carved
     *  below \p stackBase; merges instruction accounting. */
    ExecResult interpretFallback(const Function *f,
                                 const std::vector<RtValue> &args,
                                 uint64_t stackBase);

    ExecutionContext &ctx_;
    CodeManager &code_;
    uint64_t executed_ = 0;
    uint64_t interpreted_ = 0;
    uint64_t limit_ = 0;
    EdgeProfile *profile_ = nullptr;
    Dispatch dispatch_ = Dispatch::Threaded;
    uint64_t sampleInterval_ = 1;
    uint64_t sampleCountdown_ = 1;
};

} // namespace llva

#endif // LLVA_VM_MACHINE_SIM_H
