#include "vm/runtime.h"

#include <cinttypes>

#include "ir/instructions.h"
#include "support/statistic.h"

namespace llva {

namespace {

Statistic NumIntrinsicRejected(
    "vm.intrinsic_rejected",
    "LLVA intrinsic invocations rejected with a recoverable trap "
    "(bad function pointers, missing privilege)");

} // namespace

ExecutionContext::ExecutionContext(const Module &m, uint64_t mem_size)
    : m_(m), mem_(mem_size)
{
    globalAddrs_ = layoutGlobals(m, mem_);
    installDefaultHandlers();
}

const RuntimeHandler *
ExecutionContext::handlerFor(const std::string &name) const
{
    auto it = handlers_.find(name);
    return it == handlers_.end() ? nullptr : &it->second;
}

void
ExecutionContext::setHandler(const std::string &name, RuntimeHandler h)
{
    handlers_[name] = std::move(h);
}

uint64_t
ExecutionContext::trapHandler(unsigned trap_number) const
{
    auto it = trapHandlers_.find(trap_number);
    return it == trapHandlers_.end() ? 0 : it->second;
}

void
ExecutionContext::setTrapHandler(unsigned trap_number, uint64_t addr)
{
    trapHandlers_[trap_number] = addr;
}

const Function *
ExecutionContext::redirectFor(const Function *f) const
{
    auto it = redirects_.find(f);
    return it == redirects_.end() ? nullptr : it->second;
}

void
ExecutionContext::setRedirect(const Function *target,
                              const Function *repl)
{
    redirects_[target] = repl;
    invalidations_.push_back(target);
}

std::vector<const Function *>
ExecutionContext::takeInvalidations()
{
    return std::move(invalidations_);
}

uint64_t
ExecutionContext::poolAlloc(uint64_t pool_addr, uint64_t size)
{
    PoolState &pool = pools_[pool_addr];
    size = (size + 15) / 16 * 16;
    if (pool.chunkUsed + size > pool.chunkSize) {
        uint64_t chunk = std::max<uint64_t>(size, 1 << 16);
        pool.chunkBase = mem_.malloc(chunk);
        pool.chunkUsed = 0;
        pool.chunkSize = pool.chunkBase ? chunk : 0;
        if (!pool.chunkBase)
            return 0;
    }
    uint64_t addr = pool.chunkBase + pool.chunkUsed;
    pool.chunkUsed += size;
    pool.totalAllocated += size;
    pool.loAddr = std::min(pool.loAddr, addr);
    pool.hiAddr = std::max(pool.hiAddr, addr + size);
    return addr;
}

void
ExecutionContext::poolFree(uint64_t pool_addr, uint64_t ptr)
{
    // Individual objects are reclaimed when the pool dies (the
    // common fast path of pool allocation); account only.
    (void)ptr;
    pools_[pool_addr].totalFreed += 1;
}

void
ExecutionContext::serialize(ByteWriter &w) const
{
    mem_.serialize(w);
    w.writeString(out_);
    w.writeVaruint(trapHandlers_.size());
    for (const auto &[trapno, addr] : trapHandlers_) {
        w.writeVaruint(trapno);
        w.writeU64(addr);
    }
    // SMC state travels by function name: pointers are process-
    // local, names are the V-ISA-level identity.
    w.writeVaruint(redirects_.size());
    for (const auto &[target, repl] : redirects_) {
        w.writeString(target->name());
        w.writeString(repl->name());
    }
    w.writeVaruint(invalidations_.size());
    for (const Function *f : invalidations_)
        w.writeString(f->name());
    w.writeVaruint(pools_.size());
    for (const auto &[addr, p] : pools_) {
        w.writeU64(addr);
        w.writeU64(p.chunkBase);
        w.writeU64(p.chunkUsed);
        w.writeU64(p.chunkSize);
        w.writeU64(p.totalAllocated);
        w.writeU64(p.totalFreed);
        w.writeU64(p.loAddr);
        w.writeU64(p.hiAddr);
    }
    w.writeU64(storageApi_);
    w.writeByte(privileged_ ? 1 : 0);
}

bool
ExecutionContext::restore(ByteReader &r)
{
    if (!mem_.restore(r, m_))
        return false;
    out_ = r.readString();
    trapHandlers_.clear();
    uint64_t nTraps = r.readVaruint();
    for (uint64_t i = 0; i < nTraps; ++i) {
        unsigned trapno = static_cast<unsigned>(r.readVaruint());
        trapHandlers_[trapno] = r.readU64();
    }
    redirects_.clear();
    uint64_t nRedirects = r.readVaruint();
    for (uint64_t i = 0; i < nRedirects; ++i) {
        std::string target = r.readString();
        std::string repl = r.readString();
        const Function *tf = m_.getFunction(target);
        const Function *rf = m_.getFunction(repl);
        if (!tf || !rf)
            return false;
        redirects_[tf] = rf;
    }
    invalidations_.clear();
    uint64_t nInv = r.readVaruint();
    for (uint64_t i = 0; i < nInv; ++i) {
        const Function *f = m_.getFunction(r.readString());
        if (!f)
            return false;
        invalidations_.push_back(f);
    }
    pools_.clear();
    uint64_t nPools = r.readVaruint();
    for (uint64_t i = 0; i < nPools; ++i) {
        uint64_t addr = r.readU64();
        PoolState &p = pools_[addr];
        p.chunkBase = r.readU64();
        p.chunkUsed = r.readU64();
        p.chunkSize = r.readU64();
        p.totalAllocated = r.readU64();
        p.totalFreed = r.readU64();
        p.loAddr = r.readU64();
        p.hiAddr = r.readU64();
    }
    storageApi_ = r.readU64();
    privileged_ = r.readByte() != 0;
    pendingTrap_ = TrapKind::None;
    // Global addresses are assigned deterministically by the layout
    // pass in the constructor and the restored memory image was
    // written against that same layout: nothing to recompute.
    return true;
}

void
ExecutionContext::installDefaultHandlers()
{
    auto fmt = [](const char *f, auto v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), f, v);
        return std::string(buf);
    };

    handlers_["malloc"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        return RtValue::ofInt(ctx.memory().malloc(args.at(0).i));
    };
    handlers_["free"] = [](ExecutionContext &ctx,
                           const std::vector<RtValue> &args) {
        ctx.memory().free(args.at(0).i);
        return RtValue();
    };
    handlers_["puts"] = [](ExecutionContext &ctx,
                           const std::vector<RtValue> &args) {
        ctx.output() += ctx.memory().readCString(args.at(0).i);
        ctx.output() += '\n';
        return RtValue::ofInt(0);
    };
    handlers_["putstr"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        ctx.output() += ctx.memory().readCString(args.at(0).i);
        return RtValue::ofInt(0);
    };
    handlers_["putchar"] = [](ExecutionContext &ctx,
                              const std::vector<RtValue> &args) {
        ctx.output() += static_cast<char>(args.at(0).i);
        return RtValue::ofInt(args.at(0).i);
    };
    handlers_["putint"] = [fmt](ExecutionContext &ctx,
                                const std::vector<RtValue> &args) {
        ctx.output() += fmt("%" PRId64,
                            static_cast<int64_t>(args.at(0).i));
        return RtValue();
    };
    handlers_["putuint"] = [fmt](ExecutionContext &ctx,
                                 const std::vector<RtValue> &args) {
        ctx.output() += fmt("%" PRIu64, args.at(0).i);
        return RtValue();
    };
    handlers_["putdouble"] = [fmt](ExecutionContext &ctx,
                                   const std::vector<RtValue> &args) {
        ctx.output() += fmt("%.6g", args.at(0).f);
        return RtValue();
    };
    handlers_["memcpy"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        Memory &mem = ctx.memory();
        uint64_t dst = args.at(0).i, src = args.at(1).i,
                 n = args.at(2).i;
        for (uint64_t i = 0; i < n; ++i) {
            uint64_t b;
            if (!mem.load(src + i, 1, b) || !mem.store(dst + i, 1, b))
                break;
        }
        return RtValue::ofInt(dst);
    };
    handlers_["memset"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        Memory &mem = ctx.memory();
        uint64_t dst = args.at(0).i, v = args.at(1).i,
                 n = args.at(2).i;
        for (uint64_t i = 0; i < n; ++i)
            if (!mem.store(dst + i, 1, v))
                break;
        return RtValue::ofInt(dst);
    };
    handlers_["strlen"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        return RtValue::ofInt(
            ctx.memory().readCString(args.at(0).i).size());
    };

    // --- LLVA intrinsics -------------------------------------------------

    // SMC: future invocations of %target run %replacement's body
    // (paper Section 3.4 — active invocations are unaffected).
    handlers_["llva.smc.replace.function"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            const Function *target =
                ctx.memory().functionAt(args.at(0).i);
            const Function *repl =
                ctx.memory().functionAt(args.at(1).i);
            if (!target || !repl) {
                // Recoverable: an address that names no function is
                // the same failure as calling through it — raise the
                // trap instead of killing the VM, so a registered
                // handler can contain the bad update.
                ++NumIntrinsicRejected;
                ctx.raiseTrap(TrapKind::BadIndirectCall);
                return RtValue();
            }
            ctx.setRedirect(target, repl);
            return RtValue();
        };

    // Pool allocation runtime (paper Section 5.1, ref [25]).
    handlers_["llva.poolalloc"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            return RtValue::ofInt(
                ctx.poolAlloc(args.at(0).i, args.at(1).i));
        };
    handlers_["llva.poolfree"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            ctx.poolFree(args.at(0).i, args.at(1).i);
            return RtValue();
        };

    // OS support (paper Section 3.5). Privileged-only intrinsics.
    handlers_["llva.os.set.privileged"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            ctx.setPrivileged(args.at(0).i != 0);
            return RtValue();
        };
    handlers_["llva.os.register.traphandler"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            if (!ctx.privileged()) {
                // Recoverable: deliver the privilege violation as a
                // trap (paper Section 3.5) rather than aborting the
                // whole VM on an unprivileged caller.
                ++NumIntrinsicRejected;
                ctx.raiseTrap(TrapKind::PrivilegeViolation);
                return RtValue();
            }
            ctx.setTrapHandler(
                static_cast<unsigned>(args.at(0).i), args.at(1).i);
            return RtValue();
        };
    // Storage-API bootstrap: the OS registers one entry point which
    // the translator then uses to discover the rest (Section 4.1).
    handlers_["llva.os.register.storageapi"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            ctx.setStorageApi(args.at(0).i);
            return RtValue();
        };
}

} // namespace llva
