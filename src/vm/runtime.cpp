#include "vm/runtime.h"

#include <cinttypes>

#include "ir/instructions.h"

namespace llva {

ExecutionContext::ExecutionContext(const Module &m, uint64_t mem_size)
    : m_(m), mem_(mem_size)
{
    globalAddrs_ = layoutGlobals(m, mem_);
    installDefaultHandlers();
}

const RuntimeHandler *
ExecutionContext::handlerFor(const std::string &name) const
{
    auto it = handlers_.find(name);
    return it == handlers_.end() ? nullptr : &it->second;
}

void
ExecutionContext::setHandler(const std::string &name, RuntimeHandler h)
{
    handlers_[name] = std::move(h);
}

uint64_t
ExecutionContext::trapHandler(unsigned trap_number) const
{
    auto it = trapHandlers_.find(trap_number);
    return it == trapHandlers_.end() ? 0 : it->second;
}

void
ExecutionContext::setTrapHandler(unsigned trap_number, uint64_t addr)
{
    trapHandlers_[trap_number] = addr;
}

const Function *
ExecutionContext::redirectFor(const Function *f) const
{
    auto it = redirects_.find(f);
    return it == redirects_.end() ? nullptr : it->second;
}

void
ExecutionContext::setRedirect(const Function *target,
                              const Function *repl)
{
    redirects_[target] = repl;
    invalidations_.push_back(target);
}

std::vector<const Function *>
ExecutionContext::takeInvalidations()
{
    return std::move(invalidations_);
}

uint64_t
ExecutionContext::poolAlloc(uint64_t pool_addr, uint64_t size)
{
    PoolState &pool = pools_[pool_addr];
    size = (size + 15) / 16 * 16;
    if (pool.chunkUsed + size > pool.chunkSize) {
        uint64_t chunk = std::max<uint64_t>(size, 1 << 16);
        pool.chunkBase = mem_.malloc(chunk);
        pool.chunkUsed = 0;
        pool.chunkSize = pool.chunkBase ? chunk : 0;
        if (!pool.chunkBase)
            return 0;
    }
    uint64_t addr = pool.chunkBase + pool.chunkUsed;
    pool.chunkUsed += size;
    pool.totalAllocated += size;
    pool.loAddr = std::min(pool.loAddr, addr);
    pool.hiAddr = std::max(pool.hiAddr, addr + size);
    return addr;
}

void
ExecutionContext::poolFree(uint64_t pool_addr, uint64_t ptr)
{
    // Individual objects are reclaimed when the pool dies (the
    // common fast path of pool allocation); account only.
    (void)ptr;
    pools_[pool_addr].totalFreed += 1;
}

void
ExecutionContext::installDefaultHandlers()
{
    auto fmt = [](const char *f, auto v) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), f, v);
        return std::string(buf);
    };

    handlers_["malloc"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        return RtValue::ofInt(ctx.memory().malloc(args.at(0).i));
    };
    handlers_["free"] = [](ExecutionContext &ctx,
                           const std::vector<RtValue> &args) {
        ctx.memory().free(args.at(0).i);
        return RtValue();
    };
    handlers_["puts"] = [](ExecutionContext &ctx,
                           const std::vector<RtValue> &args) {
        ctx.output() += ctx.memory().readCString(args.at(0).i);
        ctx.output() += '\n';
        return RtValue::ofInt(0);
    };
    handlers_["putstr"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        ctx.output() += ctx.memory().readCString(args.at(0).i);
        return RtValue::ofInt(0);
    };
    handlers_["putchar"] = [](ExecutionContext &ctx,
                              const std::vector<RtValue> &args) {
        ctx.output() += static_cast<char>(args.at(0).i);
        return RtValue::ofInt(args.at(0).i);
    };
    handlers_["putint"] = [fmt](ExecutionContext &ctx,
                                const std::vector<RtValue> &args) {
        ctx.output() += fmt("%" PRId64,
                            static_cast<int64_t>(args.at(0).i));
        return RtValue();
    };
    handlers_["putuint"] = [fmt](ExecutionContext &ctx,
                                 const std::vector<RtValue> &args) {
        ctx.output() += fmt("%" PRIu64, args.at(0).i);
        return RtValue();
    };
    handlers_["putdouble"] = [fmt](ExecutionContext &ctx,
                                   const std::vector<RtValue> &args) {
        ctx.output() += fmt("%.6g", args.at(0).f);
        return RtValue();
    };
    handlers_["memcpy"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        Memory &mem = ctx.memory();
        uint64_t dst = args.at(0).i, src = args.at(1).i,
                 n = args.at(2).i;
        for (uint64_t i = 0; i < n; ++i) {
            uint64_t b;
            if (!mem.load(src + i, 1, b) || !mem.store(dst + i, 1, b))
                break;
        }
        return RtValue::ofInt(dst);
    };
    handlers_["memset"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        Memory &mem = ctx.memory();
        uint64_t dst = args.at(0).i, v = args.at(1).i,
                 n = args.at(2).i;
        for (uint64_t i = 0; i < n; ++i)
            if (!mem.store(dst + i, 1, v))
                break;
        return RtValue::ofInt(dst);
    };
    handlers_["strlen"] = [](ExecutionContext &ctx,
                             const std::vector<RtValue> &args) {
        return RtValue::ofInt(
            ctx.memory().readCString(args.at(0).i).size());
    };

    // --- LLVA intrinsics -------------------------------------------------

    // SMC: future invocations of %target run %replacement's body
    // (paper Section 3.4 — active invocations are unaffected).
    handlers_["llva.smc.replace.function"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            const Function *target =
                ctx.memory().functionAt(args.at(0).i);
            const Function *repl =
                ctx.memory().functionAt(args.at(1).i);
            if (!target || !repl)
                fatal("llva.smc.replace.function: bad function "
                      "pointer");
            ctx.setRedirect(target, repl);
            return RtValue();
        };

    // Pool allocation runtime (paper Section 5.1, ref [25]).
    handlers_["llva.poolalloc"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            return RtValue::ofInt(
                ctx.poolAlloc(args.at(0).i, args.at(1).i));
        };
    handlers_["llva.poolfree"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            ctx.poolFree(args.at(0).i, args.at(1).i);
            return RtValue();
        };

    // OS support (paper Section 3.5). Privileged-only intrinsics.
    handlers_["llva.os.set.privileged"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            ctx.setPrivileged(args.at(0).i != 0);
            return RtValue();
        };
    handlers_["llva.os.register.traphandler"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            if (!ctx.privileged())
                fatal("llva.os.register.traphandler requires the "
                      "privileged bit");
            ctx.setTrapHandler(
                static_cast<unsigned>(args.at(0).i), args.at(1).i);
            return RtValue();
        };
    // Storage-API bootstrap: the OS registers one entry point which
    // the translator then uses to discover the rest (Section 4.1).
    handlers_["llva.os.register.storageapi"] =
        [](ExecutionContext &ctx, const std::vector<RtValue> &args) {
            ctx.setStorageApi(args.at(0).i);
            return RtValue();
        };
}

} // namespace llva
