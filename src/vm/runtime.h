/**
 * @file
 * The minimal native runtime the LLVA execution engines expose to
 * virtual object code. LLVA itself needs no runtime system (design
 * goal #1 in Section 2); these are ordinary library functions —
 * allocation, byte I/O — that a libc would provide, plus the LLVA
 * intrinsics of Sections 3.4 and 3.5 (SMC control, trap handlers,
 * the privileged bit, and the LLEE storage-API bootstrap).
 *
 * Program output is captured into a buffer so the three execution
 * engines (interpreter, x86 simulator, sparc simulator) can be
 * compared bit-for-bit in tests.
 */

#ifndef LLVA_VM_RUNTIME_H
#define LLVA_VM_RUNTIME_H

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "codegen/memory.h"
#include "codegen/target.h"
#include "support/byte_io.h"

namespace llva {

class ExecutionContext;

/** Native handler for a declared (external) function. */
using RuntimeHandler = std::function<RtValue(
    ExecutionContext &, const std::vector<RtValue> &)>;

/**
 * Shared state of one program execution: the simulated memory, the
 * captured output, trap handlers, the privileged bit, and the
 * registered storage API (paper Section 4.1).
 */
class ExecutionContext
{
  public:
    explicit ExecutionContext(const Module &m,
                              uint64_t mem_size = 64ull << 20);

    const Module &module() const { return m_; }
    Memory &memory() { return mem_; }
    const std::map<const GlobalVariable *, uint64_t> &
    globalAddrs() const
    {
        return globalAddrs_;
    }

    /** Captured program output (putint/puts/...). */
    std::string &output() { return out_; }

    /** Resolve the handler for a declared function (or null). */
    const RuntimeHandler *handlerFor(const std::string &name) const;

    /** Install/override a handler (tests and LLEE use this). */
    void setHandler(const std::string &name, RuntimeHandler h);

    // --- OS support (paper Section 3.5) --------------------------------

    bool privileged() const { return privileged_; }
    void setPrivileged(bool p) { privileged_ = p; }

    /** Registered trap handler function address (0 = none). */
    uint64_t trapHandler(unsigned trap_number) const;
    void setTrapHandler(unsigned trap_number, uint64_t fn_addr);

    /** Storage-API bootstrap address (paper Section 4.1). */
    uint64_t storageApi() const { return storageApi_; }
    void setStorageApi(uint64_t addr) { storageApi_ = addr; }

    // --- SMC (paper Section 3.4) ----------------------------------------

    /**
     * Pending function replacements: target -> replacement. Applied
     * by the engines at the *next invocation* of the target, never
     * to currently active frames.
     */
    const Function *redirectFor(const Function *f) const;
    void setRedirect(const Function *target, const Function *repl);
    /** Functions whose translations must be invalidated (consumed). */
    std::vector<const Function *> takeInvalidations();

    // --- Pool allocation (paper Section 5.1, ref [25]) -------------------

    /** State of one pool, keyed by its descriptor's address. */
    struct PoolState
    {
        uint64_t chunkBase = 0;
        uint64_t chunkUsed = 0;
        uint64_t chunkSize = 0;
        uint64_t totalAllocated = 0;
        uint64_t totalFreed = 0;
        uint64_t loAddr = UINT64_MAX; ///< allocation address range
        uint64_t hiAddr = 0;
    };

    /** Bump-allocate \p size bytes from the pool at \p pool_addr. */
    uint64_t poolAlloc(uint64_t pool_addr, uint64_t size);
    void poolFree(uint64_t pool_addr, uint64_t ptr);

    const std::map<uint64_t, PoolState> &pools() const
    {
        return pools_;
    }

    // --- Recoverable intrinsic rejection ---------------------------------

    /**
     * Raise a trap from inside a runtime handler. Handlers have no
     * return channel for failure, so a rejected intrinsic (bad
     * function pointer, missing privilege) parks the trap here; both
     * engines check takePendingTrap() after every handler invocation
     * and deliver it through the regular trap-dispatch path — the
     * program keeps running if it registered a handler.
     */
    void raiseTrap(TrapKind k) { pendingTrap_ = k; }

    /** Consume the parked trap (None if the handler succeeded). */
    TrapKind
    takePendingTrap()
    {
        TrapKind k = pendingTrap_;
        pendingTrap_ = TrapKind::None;
        return k;
    }

    // --- Checkpoint (VM migration) ---------------------------------------

    /**
     * Serialize the whole execution state — memory image, captured
     * output, trap handlers, SMC redirects, pools, the privileged
     * bit — for a VM checkpoint. Function references are recorded
     * by name (the V-ISA-level identity), so the image is
     * relocatable across processes and target ISAs.
     */
    void serialize(ByteWriter &w) const;

    /** Rebuild execution state from checkpoint bytes. The context
     *  must wrap the same module the checkpoint was taken against.
     *  Returns false if a recorded function no longer resolves. */
    bool restore(ByteReader &r);

  private:
    void installDefaultHandlers();

    const Module &m_;
    Memory mem_;
    std::map<const GlobalVariable *, uint64_t> globalAddrs_;
    std::string out_;
    std::map<std::string, RuntimeHandler> handlers_;
    std::map<unsigned, uint64_t> trapHandlers_;
    std::map<const Function *, const Function *> redirects_;
    std::vector<const Function *> invalidations_;
    std::map<uint64_t, PoolState> pools_;
    uint64_t storageApi_ = 0;
    bool privileged_ = false;
    TrapKind pendingTrap_ = TrapKind::None;
};

} // namespace llva

#endif // LLVA_VM_RUNTIME_H
