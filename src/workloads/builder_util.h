/**
 * @file
 * Shared scaffolding for authoring workloads with IRBuilder: module
 * setup with the runtime declarations, function definition helpers,
 * counted-loop construction, and a deterministic LCG.
 */

#ifndef LLVA_WORKLOADS_BUILDER_UTIL_H
#define LLVA_WORKLOADS_BUILDER_UTIL_H

#include <memory>
#include <string>
#include <vector>

#include "ir/ir_builder.h"

namespace llva {
namespace workloads {

/** A module pre-populated with the runtime declarations. */
struct Env
{
    std::unique_ptr<Module> m;
    Function *putint = nullptr;
    Function *putdouble = nullptr;
    Function *puts = nullptr;
    Function *putchar = nullptr;
    Function *mallocFn = nullptr;
    Function *freeFn = nullptr;

    explicit Env(const std::string &name)
        : m(std::make_unique<Module>(name))
    {
        TypeContext &tc = m->types();
        auto *bytePtr = tc.pointerTo(tc.ubyteTy());
        putint = m->createFunction(
            tc.functionOf(tc.voidTy(), {tc.longTy()}), "putint");
        putdouble = m->createFunction(
            tc.functionOf(tc.voidTy(), {tc.doubleTy()}), "putdouble");
        puts = m->createFunction(
            tc.functionOf(tc.intTy(), {bytePtr}), "puts");
        putchar = m->createFunction(
            tc.functionOf(tc.intTy(), {tc.intTy()}), "putchar");
        mallocFn = m->createFunction(
            tc.functionOf(bytePtr, {tc.ulongTy()}), "malloc");
        freeFn = m->createFunction(
            tc.functionOf(tc.voidTy(), {bytePtr}), "free");
    }

    TypeContext &types() { return m->types(); }

    /** Define a function with an entry block; names its arguments. */
    Function *
    def(const std::string &name, Type *ret,
        const std::vector<std::pair<Type *, std::string>> &params,
        Linkage linkage = Linkage::External)
    {
        std::vector<Type *> ptypes;
        for (auto &[t, n] : params)
            ptypes.push_back(t);
        Function *f = m->createFunction(
            types().functionOf(ret, ptypes), name, linkage);
        for (size_t i = 0; i < params.size(); ++i)
            f->arg(i)->setName(params[i].second);
        f->createBlock("entry");
        return f;
    }
};

/**
 * A counted loop `for (iv = lo; iv < hi; iv += step)`. After
 * construction the builder inserts into the body; next() closes the
 * latch and moves insertion to the exit block.
 */
class Loop
{
  public:
    Loop(IRBuilder &b, Value *lo, Value *hi,
         const std::string &name = "i")
        : b_(b)
    {
        Function *f = b.insertBlock()->parent();
        header_ = f->createBlock(name + ".header");
        body_ = f->createBlock(name + ".body");
        exit_ = f->createBlock(name + ".exit");

        BasicBlock *pre = b.insertBlock();
        b.br(header_);

        b.setInsertPoint(header_);
        iv_ = b.phi(lo->type(), name);
        iv_->addIncoming(lo, pre);
        Value *cond = b.setLT(iv_, hi, name + ".cmp");
        b.condBr(cond, body_, exit_);

        b.setInsertPoint(body_);
    }

    /** The induction variable (valid inside the body and after). */
    PhiNode *iv() const { return iv_; }

    BasicBlock *exitBlock() const { return exit_; }
    BasicBlock *headerBlock() const { return header_; }

    /** Close the loop with iv += \p step (default 1). */
    void
    next(Value *step = nullptr)
    {
        Module &m = b_.module();
        if (!step)
            step = m.constantInt(iv_->type(), 1);
        Value *inc = b_.add(iv_, step, iv_->name() + ".next");
        iv_->addIncoming(inc, b_.insertBlock());
        b_.br(header_);
        b_.setInsertPoint(exit_);
    }

  private:
    IRBuilder &b_;
    BasicBlock *header_ = nullptr;
    BasicBlock *body_ = nullptr;
    BasicBlock *exit_ = nullptr;
    PhiNode *iv_ = nullptr;
};

/**
 * Deterministic 64-bit LCG over a stack slot: emits
 * `state = state * 6364136223846793005 + 1442695040888963407` and
 * returns the new value (ulong).
 */
inline Value *
lcgNext(IRBuilder &b, Value *state_ptr)
{
    Module &m = b.module();
    TypeContext &tc = m.types();
    Value *s = b.load(state_ptr, "rng");
    Value *mul = b.mul(
        s, m.constantInt(tc.ulongTy(), 6364136223846793005ull));
    Value *add = b.add(
        mul, m.constantInt(tc.ulongTy(), 1442695040888963407ull));
    b.store(add, state_ptr);
    return add;
}

/** Emit `call void %putint(long v)` (casting as needed). */
inline void
emitPutInt(IRBuilder &b, Env &env, Value *v)
{
    TypeContext &tc = env.types();
    b.call(env.putint, {b.cast_(v, tc.longTy())});
}

} // namespace workloads
} // namespace llva

#endif // LLVA_WORKLOADS_BUILDER_UTIL_H
