/**
 * @file
 * Integer/combinatorial workloads:
 *  - mcf: network flow cost relaxation over arc structures.
 *  - vpr: placement cost annealing on a grid.
 *  - twolf: standard-cell swapping over doubly linked rows.
 *  - crafty: bitboard move generation over 64-bit words.
 *  - gap: permutation-group orbit/order computation.
 */

#include "workloads/builder_util.h"

namespace llva {
namespace workloads {

// --- 181.mcf -----------------------------------------------------------------

std::unique_ptr<Module>
buildMCF(int scale)
{
    int nodes = 30 * scale;
    int arcs = nodes * 4;
    Env env("181.mcf");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // struct Arc { long src; long dst; long cost }
    StructType *arcTy = tc.namedStruct(
        "struct.Arc", {tc.longTy(), tc.longTy(), tc.longTy()});
    PointerType *arcPtr = tc.pointerTo(arcTy);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x9e6c63d0876a9a35ull), rng);

    uint64_t arcSize = arcTy->sizeInBytes(8);
    Value *arcArr = b.cast_(
        b.call(env.mallocFn, {b.cULong(arcSize * (uint64_t)arcs)}),
        arcPtr, "arcs");

    // Chain arcs keep every node reachable; the rest are random.
    {
        Loop i(b, b.cLong(0), b.cLong(arcs), "mk");
        Value *a = b.gepAt(arcArr, i.iv(), "a");
        BasicBlock *chain = f->createBlock("chain");
        BasicBlock *rand = f->createBlock("rand");
        BasicBlock *done = f->createBlock("mkdone");
        b.condBr(b.setLT(i.iv(), b.cLong(nodes - 1)), chain, rand);
        b.setInsertPoint(chain);
        b.store(i.iv(), b.gepField(a, 0));
        b.store(b.add(i.iv(), b.cLong(1)), b.gepField(a, 1));
        b.br(done);
        b.setInsertPoint(rand);
        Value *r1 = lcgNext(b, rng);
        b.store(b.cast_(b.rem(b.shr(r1, b.cUByte(7)),
                              b.cULong((uint64_t)nodes)),
                        tc.longTy()),
                b.gepField(a, 0));
        Value *r2 = lcgNext(b, rng);
        b.store(b.cast_(b.rem(b.shr(r2, b.cUByte(11)),
                              b.cULong((uint64_t)nodes)),
                        tc.longTy()),
                b.gepField(a, 1));
        b.br(done);
        b.setInsertPoint(done);
        Value *r3 = lcgNext(b, rng);
        b.store(b.cast_(b.add(b.rem(b.shr(r3, b.cUByte(5)),
                                    b.cULong(50)),
                              b.cULong(1)),
                        tc.longTy()),
                b.gepField(a, 2));
        i.next();
    }

    // Bellman–Ford relaxation from node 0.
    Value *dist = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * nodes)}),
        tc.pointerTo(tc.longTy()), "dist");
    {
        Loop i(b, b.cLong(0), b.cLong(nodes), "dz");
        b.store(b.cLong(1 << 28), b.gepAt(dist, i.iv()));
        i.next();
    }
    b.store(b.cLong(0), b.gepAt(dist, b.cLong(0)));

    Value *relaxed = b.alloca_(tc.longTy(), nullptr, "relaxed");
    b.store(b.cLong(0), relaxed);
    {
        Loop pass(b, b.cLong(0), b.cLong(nodes), "pass");
        {
            Loop i(b, b.cLong(0), b.cLong(arcs), "arc");
            Value *a = b.gepAt(arcArr, i.iv());
            Value *src = b.load(b.gepField(a, 0));
            Value *dst = b.load(b.gepField(a, 1));
            Value *cost = b.load(b.gepField(a, 2));
            Value *ds = b.load(b.gepAt(dist, src));
            Value *nd = b.add(ds, cost);
            Value *dslot = b.gepAt(dist, dst);
            BasicBlock *upd = f->createBlock("relax");
            BasicBlock *nxt = f->createBlock("rnext");
            b.condBr(b.setLT(nd, b.load(dslot)), upd, nxt);
            b.setInsertPoint(upd);
            b.store(nd, dslot);
            b.store(b.add(b.load(relaxed), b.cLong(1)), relaxed);
            b.br(nxt);
            b.setInsertPoint(nxt);
            i.next();
        }
        pass.next();
    }

    Value *acc = b.alloca_(tc.longTy(), nullptr, "acc");
    b.store(b.cLong(0), acc);
    {
        Loop i(b, b.cLong(0), b.cLong(nodes), "sumd");
        b.store(b.add(b.load(acc), b.load(b.gepAt(dist, i.iv()))),
                acc);
        i.next();
    }
    Value *sum = b.add(b.mul(b.load(relaxed), b.cLong(100000)),
                       b.rem(b.load(acc), b.cLong(100000)), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 175.vpr -----------------------------------------------------------------

std::unique_ptr<Module>
buildVPR(int scale)
{
    int grid = 8;
    int cells = grid * grid / 2;
    int nets = cells;
    int moves = 120 * scale;
    Env env("175.vpr");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x7f4a7c159e3779b9ull), rng);

    // Positions: posx[cells], posy[cells]; nets connect cell pairs.
    auto larr = [&](int count, const char *name) {
        return b.cast_(
            b.call(env.mallocFn, {b.cULong(8ull * count)}),
            tc.pointerTo(tc.longTy()), name);
    };
    Value *posx = larr(cells, "posx");
    Value *posy = larr(cells, "posy");
    Value *netA = larr(nets, "netA");
    Value *netB = larr(nets, "netB");

    {
        Loop i(b, b.cLong(0), b.cLong(cells), "pinit");
        b.store(b.rem(i.iv(), b.cLong(grid)),
                b.gepAt(posx, i.iv()));
        b.store(b.div(i.iv(), b.cLong(grid)),
                b.gepAt(posy, i.iv()));
        i.next();
    }
    {
        Loop i(b, b.cLong(0), b.cLong(nets), "ninit");
        b.store(i.iv(), b.gepAt(netA, i.iv()));
        Value *r = lcgNext(b, rng);
        b.store(b.cast_(b.rem(b.shr(r, b.cUByte(9)),
                              b.cULong((uint64_t)cells)),
                        tc.longTy()),
                b.gepAt(netB, i.iv()));
        i.next();
    }

    // long cost(): sum of half-perimeter wirelengths.
    Function *costFn =
        env.def("cost", tc.longTy(), {}, Linkage::Internal);
    // cost() reads the placement arrays through globals: store the
    // pointers into globals so the helper can see them.
    GlobalVariable *gx = env.m->createGlobal(
        tc.pointerTo(tc.longTy()), "gposx", nullptr);
    GlobalVariable *gy = env.m->createGlobal(
        tc.pointerTo(tc.longTy()), "gposy", nullptr);
    GlobalVariable *ga = env.m->createGlobal(
        tc.pointerTo(tc.longTy()), "gnetA", nullptr);
    GlobalVariable *gb = env.m->createGlobal(
        tc.pointerTo(tc.longTy()), "gnetB", nullptr);
    {
        IRBuilder cb(*env.m, costFn->entryBlock());
        Value *px = cb.load(gx, "px");
        Value *py = cb.load(gy, "py");
        Value *na = cb.load(ga, "na");
        Value *nb = cb.load(gb, "nb");
        Value *acc = cb.alloca_(tc.longTy(), nullptr, "acc");
        cb.store(cb.cLong(0), acc);
        Loop i(cb, cb.cLong(0), cb.cLong(nets), "net");
        Value *ca = cb.load(cb.gepAt(na, i.iv()));
        Value *cbv = cb.load(cb.gepAt(nb, i.iv()));
        Value *dx = cb.sub(cb.load(cb.gepAt(px, ca)),
                           cb.load(cb.gepAt(px, cbv)));
        Value *dy = cb.sub(cb.load(cb.gepAt(py, ca)),
                           cb.load(cb.gepAt(py, cbv)));
        // |dx| + |dy| via conditional negation.
        auto absVal = [&](Value *v) {
            Value *neg = cb.sub(cb.cLong(0), v);
            Value *isNeg = cb.setLT(v, cb.cLong(0));
            BasicBlock *n = costFn->createBlock("neg");
            BasicBlock *p = costFn->createBlock("pos");
            BasicBlock *j = costFn->createBlock("join");
            BasicBlock *cur = cb.insertBlock();
            cb.condBr(isNeg, n, p);
            cb.setInsertPoint(n);
            cb.br(j);
            cb.setInsertPoint(p);
            cb.br(j);
            cb.setInsertPoint(j);
            PhiNode *phi = cb.phi(tc.longTy(), "abs");
            phi->addIncoming(neg, n);
            phi->addIncoming(v, p);
            (void)cur;
            return static_cast<Value *>(phi);
        };
        Value *hp = cb.add(absVal(dx), absVal(dy));
        cb.store(cb.add(cb.load(acc), hp), acc);
        i.next();
        cb.ret(cb.load(acc));
    }

    b.store(posx, gx);
    b.store(posy, gy);
    b.store(netA, ga);
    b.store(netB, gb);

    // Annealing: swap two cells; keep if the cost improves, or
    // occasionally anyway (temperature decays with the move count).
    Value *accepted = b.alloca_(tc.longTy(), nullptr, "accepted");
    b.store(b.cLong(0), accepted);
    {
        Loop mv(b, b.cLong(0), b.cLong(moves), "mv");
        Value *before = b.call(costFn, {}, "before");
        Value *r1 = lcgNext(b, rng);
        Value *c1 = b.cast_(b.rem(b.shr(r1, b.cUByte(7)),
                                  b.cULong((uint64_t)cells)),
                            tc.longTy(), "c1");
        Value *r2 = lcgNext(b, rng);
        Value *c2 = b.cast_(b.rem(b.shr(r2, b.cUByte(13)),
                                  b.cULong((uint64_t)cells)),
                            tc.longTy(), "c2");
        auto swap = [&](Value *arr) {
            Value *s1 = b.gepAt(arr, c1);
            Value *s2 = b.gepAt(arr, c2);
            Value *t1 = b.load(s1);
            Value *t2 = b.load(s2);
            b.store(t2, s1);
            b.store(t1, s2);
        };
        swap(posx);
        swap(posy);
        Value *after = b.call(costFn, {}, "after");
        Value *worse = b.setGT(after, before);
        // Temperature: accept worse moves while (lcg & 1023) <
        // 800 - moveIndex*4 (clamped at 0 implicitly).
        Value *r3 = lcgNext(b, rng);
        Value *dice = b.cast_(
            b.band(r3, b.cULong(1023)), tc.longTy(), "dice");
        Value *temp = b.sub(b.cLong(800),
                            b.mul(mv.iv(), b.cLong(4)), "temp");
        Value *lucky = b.setLT(dice, temp);
        Value *keepWorse = b.band(worse, b.bxor(lucky, b.cBool(true)));
        BasicBlock *revert = f->createBlock("revert");
        BasicBlock *keep = f->createBlock("keep");
        BasicBlock *nxt = f->createBlock("mvnext");
        b.condBr(keepWorse, revert, keep);
        b.setInsertPoint(revert);
        swap(posx);
        swap(posy);
        b.br(nxt);
        b.setInsertPoint(keep);
        b.store(b.add(b.load(accepted), b.cLong(1)), accepted);
        b.br(nxt);
        b.setInsertPoint(nxt);
        mv.next();
    }

    Value *final_cost = b.call(costFn, {}, "final");
    Value *sum = b.add(b.mul(b.load(accepted), b.cLong(100000)),
                       final_cost, "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 300.twolf ---------------------------------------------------------------

std::unique_ptr<Module>
buildTwolf(int scale)
{
    int cells = 24 * scale;
    int passes = 6 * scale;
    Env env("300.twolf");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // struct Cell { long width; long gain; Cell *prev; Cell *next }
    StructType *cellTy = tc.namedStruct("struct.Cell", {});
    cellTy->setBody({tc.longTy(), tc.longTy(),
                     tc.pointerTo(cellTy), tc.pointerTo(cellTy)});
    PointerType *cellPtr = tc.pointerTo(cellTy);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0xcafef00dd15ea5e5ull), rng);

    // Build a doubly linked row of cells with random widths.
    uint64_t cellSize = cellTy->sizeInBytes(8);
    Value *headSlot = b.alloca_(cellPtr, nullptr, "head");
    b.store(b.cNull(cellTy), headSlot);
    Value *tailSlot = b.alloca_(cellPtr, nullptr, "tail");
    b.store(b.cNull(cellTy), tailSlot);
    {
        Loop i(b, b.cLong(0), b.cLong(cells), "mkcell");
        Value *raw = b.call(env.mallocFn, {b.cULong(cellSize)});
        Value *c = b.cast_(raw, cellPtr, "c");
        Value *r = lcgNext(b, rng);
        b.store(b.cast_(b.add(b.rem(b.shr(r, b.cUByte(6)),
                                    b.cULong(20)),
                              b.cULong(1)),
                        tc.longTy()),
                b.gepField(c, 0));
        b.store(i.iv(), b.gepField(c, 1)); // gain = original index
        b.store(b.cNull(cellTy), b.gepField(c, 3));
        Value *tail = b.load(tailSlot);
        b.store(tail, b.gepField(c, 2));
        BasicBlock *first = f->createBlock("first");
        BasicBlock *append = f->createBlock("append");
        BasicBlock *done = f->createBlock("mkdone");
        b.condBr(b.setEQ(tail, b.cNull(cellTy)), first, append);
        b.setInsertPoint(first);
        b.store(c, headSlot);
        b.br(done);
        b.setInsertPoint(append);
        b.store(c, b.gepField(tail, 3));
        b.br(done);
        b.setInsertPoint(done);
        b.store(c, tailSlot);
        i.next();
    }

    // Bubble passes: swap adjacent cells when the wider one comes
    // first (sorting by width via list surgery, like twolf's cell
    // exchanges).
    Value *swaps = b.alloca_(tc.longTy(), nullptr, "swaps");
    b.store(b.cLong(0), swaps);
    {
        Loop p(b, b.cLong(0), b.cLong(passes), "pass");
        Value *cur = b.alloca_(cellPtr, nullptr, "cur");
        b.store(b.load(headSlot), cur);
        BasicBlock *walkHead = f->createBlock("walk.head");
        BasicBlock *walkBody = f->createBlock("walk.body");
        BasicBlock *walkExit = f->createBlock("walk.exit");
        b.br(walkHead);
        b.setInsertPoint(walkHead);
        Value *c = b.load(cur, "c");
        BasicBlock *haveC = f->createBlock("haveC");
        b.condBr(b.setEQ(c, b.cNull(cellTy)), walkExit, haveC);
        b.setInsertPoint(haveC);
        Value *n = b.load(b.gepField(c, 3), "n");
        b.condBr(b.setEQ(n, b.cNull(cellTy)), walkExit, walkBody);
        b.setInsertPoint(walkBody);
        Value *wc = b.load(b.gepField(c, 0));
        Value *wn = b.load(b.gepField(n, 0));
        BasicBlock *doSwap = f->createBlock("doswap");
        BasicBlock *advance = f->createBlock("advance");
        b.condBr(b.setGT(wc, wn), doSwap, advance);
        b.setInsertPoint(doSwap);
        // Swap payloads (width and gain) instead of relinking: the
        // traversal stays simple and the memory traffic is the same.
        b.store(wn, b.gepField(c, 0));
        b.store(wc, b.gepField(n, 0));
        Value *gc = b.load(b.gepField(c, 1));
        Value *gn = b.load(b.gepField(n, 1));
        b.store(gn, b.gepField(c, 1));
        b.store(gc, b.gepField(n, 1));
        b.store(b.add(b.load(swaps), b.cLong(1)), swaps);
        b.br(advance);
        b.setInsertPoint(advance);
        b.store(n, cur);
        b.br(walkHead);
        b.setInsertPoint(walkExit);
        p.next();
    }

    // Positional hash of the final order (walk backwards too, to
    // exercise prev links).
    Value *hash = b.alloca_(tc.ulongTy(), nullptr, "hash");
    b.store(b.cULong(0), hash);
    Value *cur = b.alloca_(cellPtr, nullptr, "hc");
    b.store(b.load(tailSlot), cur);
    BasicBlock *hHead = f->createBlock("h.head");
    BasicBlock *hBody = f->createBlock("h.body");
    BasicBlock *hExit = f->createBlock("h.exit");
    b.br(hHead);
    b.setInsertPoint(hHead);
    Value *c = b.load(cur);
    b.condBr(b.setEQ(c, b.cNull(cellTy)), hExit, hBody);
    b.setInsertPoint(hBody);
    Value *g = b.cast_(b.load(b.gepField(c, 1)), tc.ulongTy());
    Value *h = b.mul(b.load(hash), b.cULong(31));
    b.store(b.add(h, g), hash);
    b.store(b.load(b.gepField(c, 2)), cur);
    b.br(hHead);
    b.setInsertPoint(hExit);

    Value *sum = b.add(
        b.mul(b.load(swaps), b.cLong(1000000)),
        b.cast_(b.rem(b.load(hash), b.cULong(1000000)),
                tc.longTy()),
        "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 186.crafty --------------------------------------------------------------

std::unique_ptr<Module>
buildCrafty(int scale)
{
    int positions = 100 * scale;
    Env env("186.crafty");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // ulong popcount(ulong x): Kernighan loop.
    Function *popcnt = env.def("popcount", tc.ulongTy(),
                               {{tc.ulongTy(), "x"}},
                               Linkage::Internal);
    {
        IRBuilder pb(*env.m, popcnt->entryBlock());
        Value *xs = pb.alloca_(tc.ulongTy(), nullptr, "xs");
        pb.store(popcnt->arg(0), xs);
        Value *n = pb.alloca_(tc.ulongTy(), nullptr, "n");
        pb.store(pb.cULong(0), n);
        BasicBlock *head = popcnt->createBlock("head");
        BasicBlock *body = popcnt->createBlock("body");
        BasicBlock *exit = popcnt->createBlock("exit");
        pb.br(head);
        pb.setInsertPoint(head);
        Value *x = pb.load(xs);
        pb.condBr(pb.setNE(x, pb.cULong(0)), body, exit);
        pb.setInsertPoint(body);
        Value *x1 = pb.sub(x, pb.cULong(1));
        pb.store(pb.band(x, x1), xs);
        pb.store(pb.add(pb.load(n), pb.cULong(1)), n);
        pb.br(head);
        pb.setInsertPoint(exit);
        pb.ret(pb.load(n));
    }

    // ulong knightAttacks(ulong knights): shifted masks.
    Function *knights = env.def("knightAttacks", tc.ulongTy(),
                                {{tc.ulongTy(), "kn"}},
                                Linkage::Internal);
    {
        IRBuilder kb(*env.m, knights->entryBlock());
        Value *kn = knights->arg(0);
        Value *notA = kb.cULong(0xfefefefefefefefeull);
        Value *notAB = kb.cULong(0xfcfcfcfcfcfcfcfcull);
        Value *notH = kb.cULong(0x7f7f7f7f7f7f7f7full);
        Value *notGH = kb.cULong(0x3f3f3f3f3f3f3f3full);
        Value *acc = kb.bor(
            kb.shl(kb.band(kn, notH), kb.cUByte(17)),
            kb.shl(kb.band(kn, notA), kb.cUByte(15)));
        acc = kb.bor(acc,
                     kb.shl(kb.band(kn, notGH), kb.cUByte(10)));
        acc = kb.bor(acc,
                     kb.shl(kb.band(kn, notAB), kb.cUByte(6)));
        acc = kb.bor(acc,
                     kb.shr(kb.band(kn, notA), kb.cUByte(17)));
        acc = kb.bor(acc,
                     kb.shr(kb.band(kn, notH), kb.cUByte(15)));
        acc = kb.bor(acc,
                     kb.shr(kb.band(kn, notAB), kb.cUByte(10)));
        acc = kb.bor(acc,
                     kb.shr(kb.band(kn, notGH), kb.cUByte(6)));
        kb.ret(acc);
    }

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());
    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x8000000080000001ull), rng);

    Value *total = b.alloca_(tc.ulongTy(), nullptr, "total");
    b.store(b.cULong(0), total);
    {
        Loop p(b, b.cLong(0), b.cLong(positions), "pos");
        Value *occ = lcgNext(b, rng);
        Value *kn = b.band(occ, lcgNext(b, rng));
        Value *att = b.call(knights, {kn}, "att");
        Value *legal = b.band(
            att, b.bxor(occ, b.cULong(~0ull)), "legal");
        Value *mobility = b.call(popcnt, {legal}, "mob");
        Value *material = b.call(popcnt, {occ}, "mat");
        Value *score =
            b.add(b.mul(mobility, b.cULong(10)), material);
        b.store(b.add(b.load(total), score), total);
        p.next();
    }

    Value *sum = b.cast_(b.rem(b.load(total), b.cULong(1000000007)),
                         tc.longTy(), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 254.gap -----------------------------------------------------------------

std::unique_ptr<Module>
buildGap(int scale)
{
    int degree = 12;
    int perms = 10 * scale;
    Env env("254.gap");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());
    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x41c64e6d41c64e6dull), rng);

    auto parr = [&](const char *name) {
        return b.cast_(
            b.call(env.mallocFn, {b.cULong(8ull * degree)}),
            tc.pointerTo(tc.longTy()), name);
    };

    Value *perm = parr("perm");
    Value *cur = parr("cur");
    Value *tmp = parr("tmp");

    Value *orderSum = b.alloca_(tc.longTy(), nullptr, "ordersum");
    b.store(b.cLong(0), orderSum);

    {
        Loop pi(b, b.cLong(0), b.cLong(perms), "perm");
        // Random permutation by Fisher–Yates.
        {
            Loop i(b, b.cLong(0), b.cLong(degree), "id");
            b.store(i.iv(), b.gepAt(perm, i.iv()));
            i.next();
        }
        {
            Loop i(b, b.cLong(1), b.cLong(degree), "shuf");
            Value *r = lcgNext(b, rng);
            Value *j = b.cast_(
                b.rem(b.shr(r, b.cUByte(33)),
                      b.cast_(b.add(i.iv(), b.cLong(1)),
                              tc.ulongTy())),
                tc.longTy(), "j");
            Value *si = b.gepAt(perm, i.iv());
            Value *sj = b.gepAt(perm, j);
            Value *vi = b.load(si);
            Value *vj = b.load(sj);
            b.store(vj, si);
            b.store(vi, sj);
            i.next();
        }
        // Order of the permutation: compose until identity.
        {
            Loop i(b, b.cLong(0), b.cLong(degree), "cp");
            b.store(b.load(b.gepAt(perm, i.iv())),
                    b.gepAt(cur, i.iv()));
            i.next();
        }
        Value *order = b.alloca_(tc.longTy(), nullptr, "order");
        b.store(b.cLong(1), order);
        BasicBlock *oHead = f->createBlock("ord.head");
        BasicBlock *oBody = f->createBlock("ord.body");
        BasicBlock *oExit = f->createBlock("ord.exit");
        b.br(oHead);
        b.setInsertPoint(oHead);
        // Identity check.
        Value *isId = b.alloca_(tc.boolTy(), nullptr, "isid");
        b.store(b.cBool(true), isId);
        {
            Loop i(b, b.cLong(0), b.cLong(degree), "chk");
            Value *v = b.load(b.gepAt(cur, i.iv()));
            Value *same = b.setEQ(v, i.iv());
            b.store(b.band(b.load(isId), same), isId);
            i.next();
        }
        b.condBr(b.load(isId), oExit, oBody);
        b.setInsertPoint(oBody);
        // cur = cur ∘ perm
        {
            Loop i(b, b.cLong(0), b.cLong(degree), "comp");
            Value *pv = b.load(b.gepAt(perm, i.iv()));
            Value *cv = b.load(b.gepAt(cur, pv));
            b.store(cv, b.gepAt(tmp, i.iv()));
            i.next();
        }
        {
            Loop i(b, b.cLong(0), b.cLong(degree), "wb");
            b.store(b.load(b.gepAt(tmp, i.iv())),
                    b.gepAt(cur, i.iv()));
            i.next();
        }
        b.store(b.add(b.load(order), b.cLong(1)), order);
        b.br(oHead);
        b.setInsertPoint(oExit);
        b.store(b.add(b.load(orderSum), b.load(order)), orderSum);
        pi.next();
    }

    Value *sum = b.load(orderSum);
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

} // namespace workloads
} // namespace llva
