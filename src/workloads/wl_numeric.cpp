/**
 * @file
 * Floating-point workloads mirroring the paper's CFP2000 rows and
 * ammp:
 *  - art: neural-network recognition (dense matvec + winner update).
 *  - equake: sparse matrix-vector products in CSR form.
 *  - ammp: n-body molecular-dynamics force integration.
 */

#include "workloads/builder_util.h"

namespace llva {
namespace workloads {

// --- 179.art -----------------------------------------------------------------

std::unique_ptr<Module>
buildArt(int scale)
{
    int neurons = 12 * scale;
    int inputs = 16;
    int iters = 20 * scale;
    Env env("179.art");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x853c49e6748fea9bull), rng);

    auto dvec = [&](int count, const char *name) {
        Value *raw =
            b.call(env.mallocFn, {b.cULong(8ull * count)});
        return b.cast_(raw, tc.pointerTo(tc.doubleTy()), name);
    };
    Value *wts = dvec(neurons * inputs, "w");
    Value *x = dvec(inputs, "x");
    Value *y = dvec(neurons, "y");

    auto frand = [&]() {
        // Uniform-ish double in [0, 1): (lcg >> 11) / 2^53.
        Value *r = lcgNext(b, rng);
        Value *hi = b.shr(r, b.cUByte(11));
        Value *d = b.cast_(hi, tc.doubleTy());
        return b.div(d, b.cDouble(9007199254740992.0));
    };

    {
        Loop i(b, b.cLong(0), b.cLong(neurons * inputs), "wi");
        b.store(frand(), b.gepAt(wts, i.iv()));
        i.next();
    }

    Value *drift = b.alloca_(tc.doubleTy(), nullptr, "drift");
    b.store(b.cDouble(0.0), drift);

    {
        Loop t(b, b.cLong(0), b.cLong(iters), "t");
        // Fresh input vector each iteration.
        {
            Loop i(b, b.cLong(0), b.cLong(inputs), "xi");
            b.store(frand(), b.gepAt(x, i.iv()));
            i.next();
        }
        // y = W x
        {
            Loop i(b, b.cLong(0), b.cLong(neurons), "yi");
            Value *acc = b.alloca_(tc.doubleTy(), nullptr, "acc");
            b.store(b.cDouble(0.0), acc);
            {
                Loop j(b, b.cLong(0), b.cLong(inputs), "yj");
                Value *wij = b.load(b.gepAt(
                    wts, b.add(b.mul(i.iv(), b.cLong(inputs)),
                               j.iv())));
                Value *xj = b.load(b.gepAt(x, j.iv()));
                b.store(b.add(b.load(acc), b.mul(wij, xj)), acc);
                j.next();
            }
            b.store(b.load(acc), b.gepAt(y, i.iv()));
            i.next();
        }
        // Winner take all.
        Value *bestV = b.alloca_(tc.doubleTy(), nullptr, "bestv");
        Value *bestI = b.alloca_(tc.longTy(), nullptr, "besti");
        b.store(b.cDouble(-1.0e30), bestV);
        b.store(b.cLong(0), bestI);
        {
            Loop i(b, b.cLong(0), b.cLong(neurons), "win");
            Value *yi = b.load(b.gepAt(y, i.iv()));
            BasicBlock *upd = f->createBlock("upd");
            BasicBlock *nxt = f->createBlock("wnext");
            b.condBr(b.setGT(yi, b.load(bestV)), upd, nxt);
            b.setInsertPoint(upd);
            b.store(yi, bestV);
            b.store(i.iv(), bestI);
            b.br(nxt);
            b.setInsertPoint(nxt);
            i.next();
        }
        // Move the winner's weights toward the input (learning).
        Value *wi = b.load(bestI, "winner");
        {
            Loop j(b, b.cLong(0), b.cLong(inputs), "learn");
            Value *slot = b.gepAt(
                wts, b.add(b.mul(wi, b.cLong(inputs)), j.iv()));
            Value *wv = b.load(slot);
            Value *xv = b.load(b.gepAt(x, j.iv()));
            Value *nv = b.add(
                wv, b.mul(b.cDouble(0.25), b.sub(xv, wv)));
            b.store(nv, slot);
            j.next();
        }
        b.store(b.add(b.load(drift), b.load(bestV)), drift);
        t.next();
    }

    Value *scaled = b.mul(b.load(drift), b.cDouble(1000.0));
    Value *sum = b.cast_(scaled, tc.longTy(), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 183.equake --------------------------------------------------------------

std::unique_ptr<Module>
buildEquake(int scale)
{
    int n = 60 * scale;       // rows
    int per_row = 5;          // nonzeros per row
    int iters = 12 * scale;
    Env env("183.equake");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0xaef17502108ef2d9ull), rng);

    int nnz = n * per_row;
    Value *rowptr = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * (n + 1))}),
        tc.pointerTo(tc.longTy()), "rowptr");
    Value *col = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * nnz)}),
        tc.pointerTo(tc.longTy()), "col");
    Value *val = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * nnz)}),
        tc.pointerTo(tc.doubleTy()), "val");
    Value *xv = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * n)}),
        tc.pointerTo(tc.doubleTy()), "x");
    Value *yv = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * n)}),
        tc.pointerTo(tc.doubleTy()), "y");

    // Build the CSR structure: fixed row degree, scattered columns.
    {
        Loop i(b, b.cLong(0), b.cLong(n + 1), "rp");
        b.store(b.mul(i.iv(), b.cLong(per_row)),
                b.gepAt(rowptr, i.iv()));
        i.next();
    }
    {
        Loop k(b, b.cLong(0), b.cLong(nnz), "fill");
        Value *r = lcgNext(b, rng);
        Value *c = b.cast_(b.rem(b.shr(r, b.cUByte(9)),
                                 b.cULong((uint64_t)n)),
                           tc.longTy());
        b.store(c, b.gepAt(col, k.iv()));
        Value *r2 = lcgNext(b, rng);
        Value *mag = b.cast_(b.rem(b.shr(r2, b.cUByte(17)),
                                   b.cULong(1000)),
                             tc.doubleTy());
        b.store(b.div(mag, b.cDouble(999.0)),
                b.gepAt(val, k.iv()));
        k.next();
    }
    {
        Loop i(b, b.cLong(0), b.cLong(n), "x0");
        b.store(b.cDouble(1.0), b.gepAt(xv, i.iv()));
        i.next();
    }

    // Iterate y = A x; x = y * (1 / (1 + ||row scale||)).
    {
        Loop t(b, b.cLong(0), b.cLong(iters), "t");
        {
            Loop i(b, b.cLong(0), b.cLong(n), "row");
            Value *lo = b.load(b.gepAt(rowptr, i.iv()), "lo");
            Value *hi = b.load(
                b.gepAt(rowptr, b.add(i.iv(), b.cLong(1))), "hi");
            Value *acc = b.alloca_(tc.doubleTy(), nullptr, "acc");
            b.store(b.cDouble(0.0), acc);
            {
                Loop k(b, lo, hi, "k");
                Value *c = b.load(b.gepAt(col, k.iv()));
                Value *a = b.load(b.gepAt(val, k.iv()));
                Value *xc = b.load(b.gepAt(xv, c));
                b.store(b.add(b.load(acc), b.mul(a, xc)), acc);
                k.next();
            }
            b.store(b.load(acc), b.gepAt(yv, i.iv()));
            i.next();
        }
        {
            Loop i(b, b.cLong(0), b.cLong(n), "renorm");
            Value *yi = b.load(b.gepAt(yv, i.iv()));
            b.store(b.mul(yi, b.cDouble(0.35)),
                    b.gepAt(xv, i.iv()));
            i.next();
        }
        t.next();
    }

    Value *acc = b.alloca_(tc.doubleTy(), nullptr, "final");
    b.store(b.cDouble(0.0), acc);
    {
        Loop i(b, b.cLong(0), b.cLong(n), "sumv");
        b.store(b.add(b.load(acc), b.load(b.gepAt(xv, i.iv()))),
                acc);
        i.next();
    }
    Value *sum = b.cast_(b.mul(b.load(acc), b.cDouble(1.0e6)),
                         tc.longTy(), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 188.ammp ----------------------------------------------------------------

std::unique_ptr<Module>
buildAmmp(int scale)
{
    int atoms = 16 * scale;
    int steps = 8 * scale;
    Env env("188.ammp");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // struct Atom { double x, y, z, vx, vy, vz }
    StructType *atomTy = tc.namedStruct(
        "struct.Atom",
        {tc.doubleTy(), tc.doubleTy(), tc.doubleTy(), tc.doubleTy(),
         tc.doubleTy(), tc.doubleTy()});
    PointerType *atomPtr = tc.pointerTo(atomTy);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x5851f42d4c957f2dull), rng);

    uint64_t atomSize = atomTy->sizeInBytes(8);
    Value *raw = b.call(env.mallocFn,
                        {b.cULong(atomSize * (uint64_t)atoms)});
    Value *arr = b.cast_(raw, atomPtr, "atoms");

    auto coord = [&]() {
        Value *r = lcgNext(b, rng);
        Value *m = b.cast_(
            b.rem(b.shr(r, b.cUByte(13)), b.cULong(2000)),
            tc.doubleTy());
        return b.sub(b.div(m, b.cDouble(100.0)), b.cDouble(10.0));
    };

    {
        Loop i(b, b.cLong(0), b.cLong(atoms), "init");
        Value *a = b.gepAt(arr, i.iv(), "a");
        for (unsigned fld = 0; fld < 3; ++fld)
            b.store(coord(), b.gepField(a, fld));
        for (unsigned fld = 3; fld < 6; ++fld)
            b.store(b.cDouble(0.0), b.gepField(a, fld));
        i.next();
    }

    Value *dt = b.cDouble(0.001);
    {
        Loop s(b, b.cLong(0), b.cLong(steps), "step");
        // Pairwise repulsive force ~ 1/r^4 (softened).
        {
            Loop i(b, b.cLong(0), b.cLong(atoms), "fi");
            Value *ai = b.gepAt(arr, i.iv(), "ai");
            {
                Loop j(b, b.cLong(0), b.cLong(atoms), "fj");
                BasicBlock *distinct = f->createBlock("distinct");
                BasicBlock *nxt = f->createBlock("fnext");
                b.condBr(b.setNE(i.iv(), j.iv()), distinct, nxt);
                b.setInsertPoint(distinct);
                Value *aj = b.gepAt(arr, j.iv(), "aj");
                Value *dx = b.sub(b.load(b.gepField(ai, 0)),
                                  b.load(b.gepField(aj, 0)));
                Value *dy = b.sub(b.load(b.gepField(ai, 1)),
                                  b.load(b.gepField(aj, 1)));
                Value *dz = b.sub(b.load(b.gepField(ai, 2)),
                                  b.load(b.gepField(aj, 2)));
                Value *r2 = b.add(
                    b.add(b.mul(dx, dx), b.mul(dy, dy)),
                    b.add(b.mul(dz, dz), b.cDouble(0.5)));
                Value *inv = b.div(b.cDouble(1.0), r2);
                Value *coef = b.mul(inv, inv);
                b.store(
                    b.add(b.load(b.gepField(ai, 3)),
                          b.mul(b.mul(dx, coef), dt)),
                    b.gepField(ai, 3));
                b.store(
                    b.add(b.load(b.gepField(ai, 4)),
                          b.mul(b.mul(dy, coef), dt)),
                    b.gepField(ai, 4));
                b.store(
                    b.add(b.load(b.gepField(ai, 5)),
                          b.mul(b.mul(dz, coef), dt)),
                    b.gepField(ai, 5));
                b.br(nxt);
                b.setInsertPoint(nxt);
                j.next();
            }
            i.next();
        }
        // Integrate positions.
        {
            Loop i(b, b.cLong(0), b.cLong(atoms), "move");
            Value *a = b.gepAt(arr, i.iv(), "m");
            for (unsigned fld = 0; fld < 3; ++fld) {
                Value *p = b.load(b.gepField(a, fld));
                Value *v = b.load(b.gepField(a, fld + 3));
                b.store(b.add(p, b.mul(v, dt)),
                        b.gepField(a, fld));
            }
            i.next();
        }
        s.next();
    }

    // Checksum: folded coordinates.
    Value *acc = b.alloca_(tc.doubleTy(), nullptr, "acc");
    b.store(b.cDouble(0.0), acc);
    {
        Loop i(b, b.cLong(0), b.cLong(atoms), "sum");
        Value *a = b.gepAt(arr, i.iv());
        Value *s = b.add(b.add(b.load(b.gepField(a, 0)),
                               b.load(b.gepField(a, 1))),
                         b.load(b.gepField(a, 2)));
        b.store(b.add(b.load(acc), s), acc);
        i.next();
    }
    Value *sum = b.cast_(b.mul(b.load(acc), b.cDouble(1000.0)),
                         tc.longTy(), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

} // namespace workloads
} // namespace llva
