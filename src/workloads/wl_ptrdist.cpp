/**
 * @file
 * PtrDist-like workloads: the pointer-intensive half of Table 2.
 *  - anagram: letter-signature hashing and pair matching.
 *  - ks: Kernighan–Lin-style graph partition improvement.
 *  - ft: minimum spanning tree over linked adjacency lists.
 *  - yacr2: channel routing by greedy track assignment.
 *  - bc: arbitrary-precision integer arithmetic.
 */

#include "workloads/builder_util.h"

namespace llva {
namespace workloads {

// --- ptrdist-anagram ---------------------------------------------------------

std::unique_ptr<Module>
buildAnagram(int scale)
{
    int n = 40 * scale;
    Env env("ptrdist-anagram");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // Prime per letter: multiplying primes gives an order-invariant
    // (anagram-invariant) signature.
    std::vector<Constant *> primes;
    static const unsigned kPrimes[26] = {
        2,  3,  5,  7,  11, 13, 17, 19, 23, 29, 31, 37, 41,
        43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101};
    for (unsigned p : kPrimes)
        primes.push_back(env.m->constantInt(tc.ulongTy(), p));
    auto *primesTy = tc.arrayOf(tc.ulongTy(), 26);
    GlobalVariable *primesGV = env.m->createGlobal(
        primesTy, "primes",
        env.m->constantAggregate(primesTy, primes), true);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x9e3779b97f4a7c15ull), rng);

    Value *bytes = b.call(env.mallocFn, {b.cULong(8ull * n)});
    Value *sigs = b.cast_(bytes, tc.pointerTo(tc.ulongTy()), "sigs");

    // Generate signatures for n pseudo-words.
    {
        Loop i(b, b.cLong(0), b.cLong(n), "w");
        Value *sigSlot = b.alloca_(tc.ulongTy(), nullptr, "sigslot");
        b.store(b.cULong(1), sigSlot);
        Value *r = lcgNext(b, rng);
        Value *len = b.add(
            b.rem(b.shr(r, b.cUByte(5)), b.cULong(5)), b.cULong(3),
            "len");
        {
            Loop j(b, b.cULong(0), len, "c");
            Value *r2 = lcgNext(b, rng);
            Value *letter = b.rem(b.shr(r2, b.cUByte(7)),
                                  b.cULong(26), "letter");
            Value *pp = b.gep(primesGV,
                              {b.cLong(0),
                               b.cast_(letter, tc.longTy())});
            Value *prime = b.load(pp, "prime");
            Value *sig = b.load(sigSlot);
            b.store(b.mul(sig, prime), sigSlot);
            j.next();
        }
        Value *slot = b.gepAt(sigs, b.cast_(i.iv(), tc.longTy()));
        b.store(b.load(sigSlot), slot);
        i.next();
    }

    // Count anagram pairs and fold signatures into a checksum.
    Value *count = b.alloca_(tc.longTy(), nullptr, "count");
    b.store(b.cLong(0), count);
    Value *fold = b.alloca_(tc.ulongTy(), nullptr, "fold");
    b.store(b.cULong(0), fold);
    {
        Loop i(b, b.cLong(0), b.cLong(n), "i");
        Value *si =
            b.load(b.gepAt(sigs, i.iv()), "si");
        b.store(b.bxor(b.load(fold), si), fold);
        {
            Loop j(b, b.add(i.iv(), b.cLong(1)), b.cLong(n), "j");
            Value *sj = b.load(b.gepAt(sigs, j.iv()), "sj");
            Value *eq = b.setEQ(si, sj, "eq");
            BasicBlock *hit = f->createBlock("hit");
            BasicBlock *cont = f->createBlock("cont");
            b.condBr(eq, hit, cont);
            b.setInsertPoint(hit);
            b.store(b.add(b.load(count), b.cLong(1)), count);
            b.br(cont);
            b.setInsertPoint(cont);
            j.next();
        }
        i.next();
    }

    b.call(env.freeFn, {bytes});
    Value *folded = b.cast_(b.load(fold), tc.longTy());
    Value *sum = b.add(b.mul(b.load(count), b.cLong(100000)),
                       b.rem(folded, b.cLong(100000)), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- ptrdist-ks --------------------------------------------------------------

std::unique_ptr<Module>
buildKS(int scale)
{
    int n = 8 * scale; // nodes (even)
    Env env("ptrdist-ks");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x2545f4914f6cdd1dull), rng);

    // Symmetric weight matrix w[n][n] of small ints.
    Value *wBytes = b.call(env.mallocFn, {b.cULong(8ull * n * n)});
    Value *w = b.cast_(wBytes, tc.pointerTo(tc.longTy()), "w");
    {
        Loop i(b, b.cLong(0), b.cLong(n), "i");
        {
            Loop j(b, b.cLong(0), b.cLong(n), "j");
            Value *r = lcgNext(b, rng);
            Value *weight = b.cast_(
                b.rem(b.shr(r, b.cUByte(3)), b.cULong(10)),
                tc.longTy(), "weight");
            Value *lt = b.setLT(i.iv(), j.iv());
            Value *sel = b.alloca_(tc.longTy(), nullptr, "sel");
            BasicBlock *upper = f->createBlock("upper");
            BasicBlock *lower = f->createBlock("lower");
            BasicBlock *done = f->createBlock("stored");
            b.condBr(lt, upper, lower);
            b.setInsertPoint(upper);
            b.store(weight, sel);
            b.br(done);
            b.setInsertPoint(lower);
            // Mirror w[j][i] to keep the matrix symmetric.
            Value *mirror = b.load(b.gepAt(
                w, b.add(b.mul(j.iv(), b.cLong(n)), i.iv())));
            b.store(mirror, sel);
            b.br(done);
            b.setInsertPoint(done);
            Value *slot = b.gepAt(
                w, b.add(b.mul(i.iv(), b.cLong(n)), j.iv()));
            b.store(b.load(sel), slot);
            j.next();
        }
        i.next();
    }

    // side[i] = (i < n/2): 1 for set A, 0 for set B.
    Value *sideBytes = b.call(env.mallocFn, {b.cULong((uint64_t)n)});
    Value *side = b.cast_(sideBytes, tc.pointerTo(tc.ubyteTy()));
    {
        Loop i(b, b.cLong(0), b.cLong(n), "s");
        Value *inA = b.setLT(i.iv(), b.cLong(n / 2));
        b.store(b.cast_(inA, tc.ubyteTy()),
                b.gepAt(side, i.iv()));
        i.next();
    }

    // Improvement passes: pick the best (a in A, b in B) swap by
    // gain D[a] + D[b] - 2*w[a][b]; apply while the gain is positive.
    Value *total = b.alloca_(tc.longTy(), nullptr, "total");
    b.store(b.cLong(0), total);
    Value *dArr = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * n)}),
        tc.pointerTo(tc.longTy()), "D");
    {
        Loop pass(b, b.cLong(0), b.cLong(4), "pass");
        // D[i] = sum_j w[i][j] * (side[i] != side[j] ? +1 : -1)
        {
            Loop i(b, b.cLong(0), b.cLong(n), "di");
            Value *acc = b.alloca_(tc.longTy(), nullptr, "acc");
            b.store(b.cLong(0), acc);
            Value *si = b.load(b.gepAt(side, i.iv()), "si");
            {
                Loop j(b, b.cLong(0), b.cLong(n), "dj");
                Value *sj = b.load(b.gepAt(side, j.iv()), "sj");
                Value *wij = b.load(b.gepAt(
                    w, b.add(b.mul(i.iv(), b.cLong(n)), j.iv())));
                Value *diff = b.setNE(si, sj);
                BasicBlock *ext = f->createBlock("ext");
                BasicBlock *inte = f->createBlock("int");
                BasicBlock *nxt = f->createBlock("dnext");
                b.condBr(diff, ext, inte);
                b.setInsertPoint(ext);
                b.store(b.add(b.load(acc), wij), acc);
                b.br(nxt);
                b.setInsertPoint(inte);
                b.store(b.sub(b.load(acc), wij), acc);
                b.br(nxt);
                b.setInsertPoint(nxt);
                j.next();
            }
            b.store(b.load(acc), b.gepAt(dArr, i.iv()));
            i.next();
        }
        // Best swap.
        Value *bestGain = b.alloca_(tc.longTy(), nullptr, "bg");
        Value *bestA = b.alloca_(tc.longTy(), nullptr, "ba");
        Value *bestB = b.alloca_(tc.longTy(), nullptr, "bb");
        b.store(b.cLong(-1000000), bestGain);
        b.store(b.cLong(0), bestA);
        b.store(b.cLong(0), bestB);
        {
            Loop i(b, b.cLong(0), b.cLong(n), "ga");
            Value *si = b.load(b.gepAt(side, i.iv()));
            BasicBlock *inA = f->createBlock("inA");
            BasicBlock *skipA = f->createBlock("skipA");
            b.condBr(b.setNE(si, b.cUByte(0)), inA, skipA);
            b.setInsertPoint(inA);
            {
                Loop j(b, b.cLong(0), b.cLong(n), "gb");
                Value *sj = b.load(b.gepAt(side, j.iv()));
                BasicBlock *inB = f->createBlock("inB");
                BasicBlock *nxt = f->createBlock("gnext");
                b.condBr(b.setEQ(sj, b.cUByte(0)), inB, nxt);
                b.setInsertPoint(inB);
                Value *da = b.load(b.gepAt(dArr, i.iv()));
                Value *db = b.load(b.gepAt(dArr, j.iv()));
                Value *wij = b.load(b.gepAt(
                    w, b.add(b.mul(i.iv(), b.cLong(n)), j.iv())));
                Value *gain = b.sub(b.add(da, db),
                                    b.mul(b.cLong(2), wij), "gain");
                BasicBlock *better = f->createBlock("better");
                b.condBr(b.setGT(gain, b.load(bestGain)), better,
                         nxt);
                b.setInsertPoint(better);
                b.store(gain, bestGain);
                b.store(i.iv(), bestA);
                b.store(j.iv(), bestB);
                b.br(nxt);
                b.setInsertPoint(nxt);
                j.next();
            }
            b.br(skipA);
            b.setInsertPoint(skipA);
            i.next();
        }
        // Apply the swap when profitable.
        BasicBlock *apply = f->createBlock("apply");
        BasicBlock *done = f->createBlock("passdone");
        b.condBr(b.setGT(b.load(bestGain), b.cLong(0)), apply,
                 done);
        b.setInsertPoint(apply);
        b.store(b.cUByte(0), b.gepAt(side, b.load(bestA)));
        b.store(b.cUByte(1), b.gepAt(side, b.load(bestB)));
        b.store(b.add(b.load(total), b.load(bestGain)), total);
        b.br(done);
        b.setInsertPoint(done);
        pass.next();
    }

    // Final cut cost.
    Value *cut = b.alloca_(tc.longTy(), nullptr, "cut");
    b.store(b.cLong(0), cut);
    {
        Loop i(b, b.cLong(0), b.cLong(n), "ci");
        Value *si = b.load(b.gepAt(side, i.iv()));
        {
            Loop j(b, b.add(i.iv(), b.cLong(1)), b.cLong(n), "cj");
            Value *sj = b.load(b.gepAt(side, j.iv()));
            BasicBlock *cross = f->createBlock("cross");
            BasicBlock *nxt = f->createBlock("cnext");
            b.condBr(b.setNE(si, sj), cross, nxt);
            b.setInsertPoint(cross);
            Value *wij = b.load(b.gepAt(
                w, b.add(b.mul(i.iv(), b.cLong(n)), j.iv())));
            b.store(b.add(b.load(cut), wij), cut);
            b.br(nxt);
            b.setInsertPoint(nxt);
            j.next();
        }
        i.next();
    }

    Value *sum = b.add(b.mul(b.load(total), b.cLong(1000)),
                       b.load(cut), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- ptrdist-ft --------------------------------------------------------------

std::unique_ptr<Module>
buildFT(int scale)
{
    int n = 24 * scale;
    int edges_per_node = 4;
    Env env("ptrdist-ft");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // struct Edge { int dst; int w; Edge *next }
    StructType *edgeTy = tc.namedStruct(
        "struct.Edge", {});
    edgeTy->setBody({tc.intTy(), tc.intTy(), tc.pointerTo(edgeTy)});
    PointerType *edgePtr = tc.pointerTo(edgeTy);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0xda3e39cb94b95bdbull), rng);

    // heads: Edge*[n]
    Value *headsBytes =
        b.call(env.mallocFn, {b.cULong(8ull * n)});
    Value *heads = b.cast_(headsBytes, tc.pointerTo(edgePtr));
    {
        Loop i(b, b.cLong(0), b.cLong(n), "hz");
        b.store(b.cNull(edgeTy), b.gepAt(heads, i.iv()));
        i.next();
    }

    uint64_t edgeSize = edgeTy->sizeInBytes(8);
    auto addEdge = [&](Value *u, Value *v, Value *wt) {
        Value *raw = b.call(env.mallocFn, {b.cULong(edgeSize)});
        Value *e = b.cast_(raw, edgePtr, "e");
        b.store(b.cast_(v, tc.intTy()), b.gepField(e, 0));
        b.store(wt, b.gepField(e, 1));
        Value *headSlot = b.gepAt(heads, u);
        b.store(b.load(headSlot), b.gepField(e, 2));
        b.store(e, headSlot);
    };

    // Ring edges keep the graph connected; extra random edges.
    {
        Loop i(b, b.cLong(0), b.cLong(n), "ring");
        Value *v = b.rem(b.add(i.iv(), b.cLong(1)), b.cLong(n));
        Value *r = lcgNext(b, rng);
        Value *wt = b.cast_(
            b.add(b.rem(b.shr(r, b.cUByte(9)), b.cULong(90)),
                  b.cULong(10)),
            tc.intTy(), "wt");
        addEdge(i.iv(), v, wt);
        addEdge(v, i.iv(), wt);
        i.next();
    }
    {
        Loop i(b, b.cLong(0),
               b.cLong((int64_t)n * (edges_per_node - 2)), "rnd");
        Value *r1 = lcgNext(b, rng);
        Value *u = b.cast_(b.rem(b.shr(r1, b.cUByte(11)),
                                 b.cULong((uint64_t)n)),
                           tc.longTy());
        Value *r2 = lcgNext(b, rng);
        Value *v = b.cast_(b.rem(b.shr(r2, b.cUByte(13)),
                                 b.cULong((uint64_t)n)),
                           tc.longTy());
        Value *r3 = lcgNext(b, rng);
        Value *wt = b.cast_(
            b.add(b.rem(b.shr(r3, b.cUByte(7)), b.cULong(100)),
                  b.cULong(1)),
            tc.intTy());
        addEdge(u, v, wt);
        addEdge(v, u, wt);
        i.next();
    }

    // Prim's algorithm with a linear-scan "frontier" (the paper's ft
    // used Fibonacci heaps; the pointer-chasing adjacency walk is
    // the behaviour that matters here).
    Value *dist = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * n)}),
        tc.pointerTo(tc.longTy()), "dist");
    Value *inTree = b.cast_(
        b.call(env.mallocFn, {b.cULong((uint64_t)n)}),
        tc.pointerTo(tc.ubyteTy()), "intree");
    {
        Loop i(b, b.cLong(0), b.cLong(n), "init");
        b.store(b.cLong(1 << 30), b.gepAt(dist, i.iv()));
        b.store(b.cUByte(0), b.gepAt(inTree, i.iv()));
        i.next();
    }
    b.store(b.cLong(0), b.gepAt(dist, b.cLong(0)));

    Value *mst = b.alloca_(tc.longTy(), nullptr, "mst");
    b.store(b.cLong(0), mst);
    {
        Loop round(b, b.cLong(0), b.cLong(n), "round");
        // Find the cheapest node not yet in the tree.
        Value *bestD = b.alloca_(tc.longTy(), nullptr, "bestd");
        Value *bestI = b.alloca_(tc.longTy(), nullptr, "besti");
        b.store(b.cLong(1 << 30), bestD);
        b.store(b.cLong(-1), bestI);
        {
            Loop i(b, b.cLong(0), b.cLong(n), "scan");
            Value *in = b.load(b.gepAt(inTree, i.iv()));
            Value *d = b.load(b.gepAt(dist, i.iv()));
            Value *avail = b.setEQ(in, b.cUByte(0));
            Value *closer = b.setLT(d, b.load(bestD));
            Value *both = b.band(avail, closer);
            BasicBlock *upd = f->createBlock("upd");
            BasicBlock *nxt = f->createBlock("snext");
            b.condBr(both, upd, nxt);
            b.setInsertPoint(upd);
            b.store(d, bestD);
            b.store(i.iv(), bestI);
            b.br(nxt);
            b.setInsertPoint(nxt);
            i.next();
        }
        Value *u = b.load(bestI, "u");
        b.store(b.cUByte(1), b.gepAt(inTree, u));
        b.store(b.add(b.load(mst), b.load(bestD)), mst);

        // Relax u's adjacency list (pointer chase).
        Value *cursor = b.alloca_(edgePtr, nullptr, "cursor");
        b.store(b.load(b.gepAt(heads, u)), cursor);
        BasicBlock *walkHead = f->createBlock("walk.head");
        BasicBlock *walkBody = f->createBlock("walk.body");
        BasicBlock *walkExit = f->createBlock("walk.exit");
        b.br(walkHead);
        b.setInsertPoint(walkHead);
        Value *e = b.load(cursor, "e");
        b.condBr(b.setNE(e, b.cNull(edgeTy)), walkBody, walkExit);
        b.setInsertPoint(walkBody);
        Value *dst = b.cast_(b.load(b.gepField(e, 0)), tc.longTy());
        Value *wt = b.cast_(b.load(b.gepField(e, 1)), tc.longTy());
        Value *dslot = b.gepAt(dist, dst);
        Value *better = b.setLT(wt, b.load(dslot));
        BasicBlock *relax = f->createBlock("relax");
        BasicBlock *walkNext = f->createBlock("walk.next");
        b.condBr(better, relax, walkNext);
        b.setInsertPoint(relax);
        b.store(wt, dslot);
        b.br(walkNext);
        b.setInsertPoint(walkNext);
        b.store(b.load(b.gepField(e, 2)), cursor);
        b.br(walkHead);
        b.setInsertPoint(walkExit);
        round.next();
    }

    Value *sum = b.load(mst);
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- ptrdist-yacr2 -----------------------------------------------------------

std::unique_ptr<Module>
buildYacr2(int scale)
{
    int n = 30 * scale; // intervals
    Env env("ptrdist-yacr2");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());

    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0xd1b54a32d192ed03ull), rng);

    Value *left = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * n)}),
        tc.pointerTo(tc.longTy()), "left");
    Value *right = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * n)}),
        tc.pointerTo(tc.longTy()), "right");

    // Random horizontal wire segments [l, r) in a 256-wide channel.
    {
        Loop i(b, b.cLong(0), b.cLong(n), "gen");
        Value *r1 = lcgNext(b, rng);
        Value *l = b.cast_(
            b.rem(b.shr(r1, b.cUByte(5)), b.cULong(200)),
            tc.longTy(), "l");
        Value *r2 = lcgNext(b, rng);
        Value *len = b.cast_(
            b.add(b.rem(b.shr(r2, b.cUByte(9)), b.cULong(50)),
                  b.cULong(4)),
            tc.longTy(), "len");
        b.store(l, b.gepAt(left, i.iv()));
        b.store(b.add(l, len), b.gepAt(right, i.iv()));
        i.next();
    }

    // Insertion sort by left edge (array shuffling, like yacr2's
    // sorted net lists).
    {
        Loop i(b, b.cLong(1), b.cLong(n), "sort");
        Value *keyL = b.load(b.gepAt(left, i.iv()), "keyl");
        Value *keyR = b.load(b.gepAt(right, i.iv()), "keyr");
        Value *jslot = b.alloca_(tc.longTy(), nullptr, "j");
        b.store(b.sub(i.iv(), b.cLong(1)), jslot);
        BasicBlock *shiftHead = f->createBlock("shift.head");
        BasicBlock *shiftBody = f->createBlock("shift.body");
        BasicBlock *shiftExit = f->createBlock("shift.exit");
        b.br(shiftHead);
        b.setInsertPoint(shiftHead);
        Value *j = b.load(jslot);
        Value *inRange = b.setGE(j, b.cLong(0));
        BasicBlock *checkVal = f->createBlock("shift.check");
        b.condBr(inRange, checkVal, shiftExit);
        b.setInsertPoint(checkVal);
        Value *lj = b.load(b.gepAt(left, j));
        b.condBr(b.setGT(lj, keyL), shiftBody, shiftExit);
        b.setInsertPoint(shiftBody);
        Value *j1 = b.add(j, b.cLong(1));
        b.store(lj, b.gepAt(left, j1));
        b.store(b.load(b.gepAt(right, j)), b.gepAt(right, j1));
        b.store(b.sub(j, b.cLong(1)), jslot);
        b.br(shiftHead);
        b.setInsertPoint(shiftExit);
        Value *pos = b.add(b.load(jslot), b.cLong(1));
        b.store(keyL, b.gepAt(left, pos));
        b.store(keyR, b.gepAt(right, pos));
        i.next();
    }

    // Greedy track assignment ("left-edge algorithm").
    int max_tracks = 64;
    Value *trackEnd = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * max_tracks)}),
        tc.pointerTo(tc.longTy()), "trackend");
    {
        Loop t(b, b.cLong(0), b.cLong(max_tracks), "tz");
        b.store(b.cLong(-1), b.gepAt(trackEnd, t.iv()));
        t.next();
    }
    Value *used = b.alloca_(tc.longTy(), nullptr, "used");
    b.store(b.cLong(0), used);
    Value *assignSum = b.alloca_(tc.longTy(), nullptr, "asum");
    b.store(b.cLong(0), assignSum);
    {
        Loop i(b, b.cLong(0), b.cLong(n), "assign");
        Value *l = b.load(b.gepAt(left, i.iv()));
        Value *r = b.load(b.gepAt(right, i.iv()));
        Value *tslot = b.alloca_(tc.longTy(), nullptr, "t");
        b.store(b.cLong(0), tslot);
        BasicBlock *findHead = f->createBlock("find.head");
        BasicBlock *findBody = f->createBlock("find.body");
        BasicBlock *found = f->createBlock("found");
        b.br(findHead);
        b.setInsertPoint(findHead);
        Value *t = b.load(tslot);
        Value *end = b.load(b.gepAt(trackEnd, t));
        b.condBr(b.setLT(end, l), found, findBody);
        b.setInsertPoint(findBody);
        b.store(b.add(t, b.cLong(1)), tslot);
        b.br(findHead);
        b.setInsertPoint(found);
        Value *tf = b.load(tslot);
        b.store(r, b.gepAt(trackEnd, tf));
        Value *t1 = b.add(tf, b.cLong(1));
        BasicBlock *bump = f->createBlock("bump");
        BasicBlock *nxt = f->createBlock("anext");
        b.condBr(b.setGT(t1, b.load(used)), bump, nxt);
        b.setInsertPoint(bump);
        b.store(t1, used);
        b.br(nxt);
        b.setInsertPoint(nxt);
        b.store(b.add(b.load(assignSum),
                      b.mul(tf, b.add(i.iv(), b.cLong(1)))),
                assignSum);
        i.next();
    }

    Value *sum = b.add(b.mul(b.load(used), b.cLong(1000000)),
                       b.load(assignSum), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- ptrdist-bc --------------------------------------------------------------

std::unique_ptr<Module>
buildBC(int scale)
{
    Env env("ptrdist-bc");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // struct Big { long len; [64 x ulong] digits } — base 1e9 limbs.
    auto *digitsTy = tc.arrayOf(tc.ulongTy(), 64);
    StructType *bigTy =
        tc.namedStruct("struct.Big", {tc.longTy(), digitsTy});
    PointerType *bigPtr = tc.pointerTo(bigTy);
    Constant *base = env.m->constantInt(tc.ulongTy(), 1000000000);

    // void bigInit(Big *x, ulong v)
    Function *bigInit = env.def(
        "bigInit", tc.voidTy(),
        {{bigPtr, "x"}, {tc.ulongTy(), "v"}}, Linkage::Internal);
    {
        b.setInsertPoint(bigInit->entryBlock());
        Value *x = bigInit->arg(0);
        Value *v = bigInit->arg(1);
        Loop i(b, b.cLong(0), b.cLong(64), "z");
        b.store(b.cULong(0),
                b.gep(x, {b.cLong(0), b.cUByte(1), i.iv()}));
        i.next();
        b.store(b.rem(v, base),
                b.gep(x, {b.cLong(0), b.cUByte(1), b.cLong(0)}));
        b.store(b.div(v, base),
                b.gep(x, {b.cLong(0), b.cUByte(1), b.cLong(1)}));
        b.store(b.cLong(2), b.gepField(x, 0));
        b.retVoid();
    }

    // void bigAdd(Big *dst, Big *a, Big *bb)  (dst may alias a)
    Function *bigAdd = env.def(
        "bigAdd", tc.voidTy(),
        {{bigPtr, "dst"}, {bigPtr, "a"}, {bigPtr, "b"}},
        Linkage::Internal);
    {
        b.setInsertPoint(bigAdd->entryBlock());
        Value *dst = bigAdd->arg(0), *a = bigAdd->arg(1),
              *bb = bigAdd->arg(2);
        Value *carry = b.alloca_(tc.ulongTy(), nullptr, "carry");
        b.store(b.cULong(0), carry);
        Loop i(b, b.cLong(0), b.cLong(63), "add");
        Value *da = b.load(
            b.gep(a, {b.cLong(0), b.cUByte(1), i.iv()}));
        Value *db = b.load(
            b.gep(bb, {b.cLong(0), b.cUByte(1), i.iv()}));
        Value *s = b.add(b.add(da, db), b.load(carry), "s");
        b.store(b.rem(s, base),
                b.gep(dst, {b.cLong(0), b.cUByte(1), i.iv()}));
        b.store(b.div(s, base), carry);
        i.next();
        b.store(b.cLong(63), b.gepField(dst, 0));
        b.retVoid();
    }

    // void bigMulSmall(Big *dst, Big *a, ulong m)
    Function *bigMul = env.def(
        "bigMulSmall", tc.voidTy(),
        {{bigPtr, "dst"}, {bigPtr, "a"}, {tc.ulongTy(), "m"}},
        Linkage::Internal);
    {
        b.setInsertPoint(bigMul->entryBlock());
        Value *dst = bigMul->arg(0), *a = bigMul->arg(1),
              *mval = bigMul->arg(2);
        Value *carry = b.alloca_(tc.ulongTy(), nullptr, "carry");
        b.store(b.cULong(0), carry);
        Loop i(b, b.cLong(0), b.cLong(63), "mul");
        Value *da = b.load(
            b.gep(a, {b.cLong(0), b.cUByte(1), i.iv()}));
        Value *p =
            b.add(b.mul(da, mval), b.load(carry), "p");
        b.store(b.rem(p, base),
                b.gep(dst, {b.cLong(0), b.cUByte(1), i.iv()}));
        b.store(b.div(p, base), carry);
        i.next();
        b.store(b.cLong(63), b.gepField(dst, 0));
        b.retVoid();
    }

    // ulong bigFold(Big *x): positional hash of the limbs.
    Function *bigFold = env.def("bigFold", tc.ulongTy(),
                                {{bigPtr, "x"}}, Linkage::Internal);
    {
        b.setInsertPoint(bigFold->entryBlock());
        Value *x = bigFold->arg(0);
        Value *acc = b.alloca_(tc.ulongTy(), nullptr, "acc");
        b.store(b.cULong(0), acc);
        Loop i(b, b.cLong(0), b.cLong(64), "fold");
        Value *d = b.load(
            b.gep(x, {b.cLong(0), b.cUByte(1), i.iv()}));
        Value *h = b.mul(b.load(acc), b.cULong(1099511628211ull));
        b.store(b.bxor(h, d), acc);
        i.next();
        b.ret(b.load(acc));
    }

    // main: factorial chain and a big Fibonacci, folded together.
    Function *f = env.def("main", tc.intTy(), {});
    {
        b.setInsertPoint(f->entryBlock());
        Value *fact = b.alloca_(bigTy, nullptr, "fact");
        b.call(bigInit, {fact, b.cULong(1)});
        Loop k(b, b.cULong(2), b.cULong(20 + 5 * (uint64_t)scale),
               "k");
        b.call(bigMul, {fact, fact, k.iv()});
        k.next();

        Value *fa = b.alloca_(bigTy, nullptr, "fa");
        Value *fb = b.alloca_(bigTy, nullptr, "fb");
        Value *ft = b.alloca_(bigTy, nullptr, "ft");
        b.call(bigInit, {fa, b.cULong(0)});
        b.call(bigInit, {fb, b.cULong(1)});
        Loop k2(b, b.cLong(0), b.cLong(60 * scale), "fib");
        b.call(bigAdd, {ft, fa, fb});
        // rotate: a <- b, b <- t (via adds with a zeroed temp)
        b.call(bigInit, {fa, b.cULong(0)});
        b.call(bigAdd, {fa, fa, fb});
        b.call(bigInit, {fb, b.cULong(0)});
        b.call(bigAdd, {fb, fb, ft});
        k2.next();

        Value *h1 = b.call(bigFold, {fact}, "h1");
        Value *h2 = b.call(bigFold, {fb}, "h2");
        Value *sum = b.cast_(
            b.rem(b.bxor(h1, h2), b.cULong(1000000007)),
            tc.longTy(), "sum");
        emitPutInt(b, env, sum);
        b.ret(b.cast_(sum, tc.intTy()));
    }
    return std::move(env.m);
}

} // namespace workloads
} // namespace llva
