/**
 * @file
 * Systems workloads:
 *  - bzip2: run-length + move-to-front compression modeling.
 *  - gzip: LZ77 with hash-chain match search.
 *  - parser: recursive-descent expression parsing with mbr dispatch
 *    and invoke/unwind error handling.
 *  - vortex: an object store — hash-indexed records with heavy
 *    malloc/free churn.
 */

#include "workloads/builder_util.h"

namespace llva {
namespace workloads {

namespace {

/** Fill buf[0..len) with skewed random bytes (reused generator). */
void
emitFillBuffer(IRBuilder &b, Env &env, Function *f, Value *rng,
               Value *buf, Value *len)
{
    TypeContext &tc = env.types();
    Loop i(b, b.cLong(0), len, "fill");
    Value *r = lcgNext(b, rng);
    Value *sel = b.rem(b.shr(r, b.cUByte(3)), b.cULong(16), "sel");
    // 12/16 chance of a byte from a 4-symbol alphabet (runs!),
    // otherwise anything.
    Value *isCommon = b.setLT(sel, b.cULong(12));
    BasicBlock *common = f->createBlock("common");
    BasicBlock *rare = f->createBlock("rare");
    BasicBlock *done = f->createBlock("filled");
    b.condBr(isCommon, common, rare);
    b.setInsertPoint(common);
    Value *c1 = b.cast_(
        b.add(b.rem(b.shr(r, b.cUByte(11)), b.cULong(4)),
              b.cULong(97)),
        tc.ubyteTy());
    b.br(done);
    b.setInsertPoint(rare);
    Value *c2 = b.cast_(b.rem(b.shr(r, b.cUByte(17)), b.cULong(256)),
                        tc.ubyteTy());
    b.br(done);
    b.setInsertPoint(done);
    PhiNode *c = b.phi(tc.ubyteTy(), "byte");
    c->addIncoming(c1, common);
    c->addIncoming(c2, rare);
    b.store(c, b.gepAt(buf, i.iv()));
    i.next();
}

} // namespace

// --- 256.bzip2 ---------------------------------------------------------------

std::unique_ptr<Module>
buildBzip2(int scale)
{
    int len = 600 * scale;
    Env env("256.bzip2");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());
    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0xb5297a4d68e31da4ull), rng);

    Value *input = b.cast_(
        b.call(env.mallocFn, {b.cULong((uint64_t)len)}),
        tc.pointerTo(tc.ubyteTy()), "input");
    Value *outBuf = b.cast_(
        b.call(env.mallocFn, {b.cULong(2ull * len + 16)}),
        tc.pointerTo(tc.ubyteTy()), "out");
    emitFillBuffer(b, env, f, rng, input, b.cLong(len));

    // Stage 1: RLE — (byte, runlen) pairs for runs >= 2.
    Value *outPos = b.alloca_(tc.longTy(), nullptr, "outpos");
    b.store(b.cLong(0), outPos);
    Value *pos = b.alloca_(tc.longTy(), nullptr, "pos");
    b.store(b.cLong(0), pos);
    BasicBlock *rleHead = f->createBlock("rle.head");
    BasicBlock *rleBody = f->createBlock("rle.body");
    BasicBlock *rleExit = f->createBlock("rle.exit");
    b.br(rleHead);
    b.setInsertPoint(rleHead);
    Value *p = b.load(pos);
    b.condBr(b.setLT(p, b.cLong(len)), rleBody, rleExit);
    b.setInsertPoint(rleBody);
    Value *byte = b.load(b.gepAt(input, p), "byte");
    // Count the run (max 255).
    Value *runEnd = b.alloca_(tc.longTy(), nullptr, "runend");
    b.store(b.add(p, b.cLong(1)), runEnd);
    BasicBlock *runHead = f->createBlock("run.head");
    BasicBlock *runBody = f->createBlock("run.body");
    BasicBlock *runExit = f->createBlock("run.exit");
    b.br(runHead);
    b.setInsertPoint(runHead);
    Value *q = b.load(runEnd);
    Value *inBounds = b.band(
        b.setLT(q, b.cLong(len)),
        b.setLT(b.sub(q, p), b.cLong(255)));
    BasicBlock *cmpB = f->createBlock("run.cmp");
    b.condBr(inBounds, cmpB, runExit);
    b.setInsertPoint(cmpB);
    Value *same = b.setEQ(b.load(b.gepAt(input, q)), byte);
    b.condBr(same, runBody, runExit);
    b.setInsertPoint(runBody);
    b.store(b.add(q, b.cLong(1)), runEnd);
    b.br(runHead);
    b.setInsertPoint(runExit);
    Value *runLen = b.sub(b.load(runEnd), p, "runlen");
    Value *op = b.load(outPos);
    b.store(byte, b.gepAt(outBuf, op));
    b.store(b.cast_(runLen, tc.ubyteTy()),
            b.gepAt(outBuf, b.add(op, b.cLong(1))));
    b.store(b.add(op, b.cLong(2)), outPos);
    b.store(b.load(runEnd), pos);
    b.br(rleHead);
    b.setInsertPoint(rleExit);

    // Stage 2: move-to-front over the RLE output symbols.
    Value *mtf = b.cast_(
        b.call(env.mallocFn, {b.cULong(256)}),
        tc.pointerTo(tc.ubyteTy()), "mtf");
    {
        Loop i(b, b.cLong(0), b.cLong(256), "mtfinit");
        b.store(b.cast_(i.iv(), tc.ubyteTy()),
                b.gepAt(mtf, i.iv()));
        i.next();
    }
    Value *entropy = b.alloca_(tc.longTy(), nullptr, "entropy");
    b.store(b.cLong(0), entropy);
    Value *outLen = b.load(outPos, "outlen");
    {
        Loop i(b, b.cLong(0), outLen, "mtfpass");
        Value *sym = b.load(b.gepAt(outBuf, i.iv()), "sym");
        // Find the symbol's position in the MTF table.
        Value *posSlot = b.alloca_(tc.longTy(), nullptr, "mpos");
        b.store(b.cLong(0), posSlot);
        BasicBlock *fHead = f->createBlock("mtf.find");
        BasicBlock *fBody = f->createBlock("mtf.step");
        BasicBlock *fExit = f->createBlock("mtf.found");
        b.br(fHead);
        b.setInsertPoint(fHead);
        Value *mp = b.load(posSlot);
        Value *entry = b.load(b.gepAt(mtf, mp));
        b.condBr(b.setEQ(entry, sym), fExit, fBody);
        b.setInsertPoint(fBody);
        b.store(b.add(mp, b.cLong(1)), posSlot);
        b.br(fHead);
        b.setInsertPoint(fExit);
        Value *rank = b.load(posSlot, "rank");
        // Shift entries down and put the symbol in front.
        {
            Loop j(b, b.cLong(0), rank, "shift");
            Value *idx = b.sub(rank, j.iv());
            Value *prev = b.load(
                b.gepAt(mtf, b.sub(idx, b.cLong(1))));
            b.store(prev, b.gepAt(mtf, idx));
            j.next();
        }
        b.store(sym, b.gepAt(mtf, b.cLong(0)));
        // "Entropy": small ranks are cheap (code length model).
        Value *cost = b.alloca_(tc.longTy(), nullptr, "cost");
        b.store(b.cLong(1), cost);
        Value *rslot = b.alloca_(tc.longTy(), nullptr, "r");
        b.store(rank, rslot);
        BasicBlock *cHead = f->createBlock("cost.head");
        BasicBlock *cBody = f->createBlock("cost.body");
        BasicBlock *cExit = f->createBlock("cost.exit");
        b.br(cHead);
        b.setInsertPoint(cHead);
        Value *r = b.load(rslot);
        b.condBr(b.setGT(r, b.cLong(0)), cBody, cExit);
        b.setInsertPoint(cBody);
        b.store(b.div(r, b.cLong(2)), rslot);
        b.store(b.add(b.load(cost), b.cLong(1)), cost);
        b.br(cHead);
        b.setInsertPoint(cExit);
        b.store(b.add(b.load(entropy), b.load(cost)), entropy);
        i.next();
    }

    Value *sum = b.add(b.mul(outLen, b.cLong(100000)),
                       b.load(entropy), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 164.gzip ----------------------------------------------------------------

std::unique_ptr<Module>
buildGzip(int scale)
{
    int len = 500 * scale;
    int hashSize = 256;
    Env env("164.gzip");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());
    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x6a09e667f3bcc908ull), rng);

    Value *input = b.cast_(
        b.call(env.mallocFn, {b.cULong((uint64_t)len + 8)}),
        tc.pointerTo(tc.ubyteTy()), "input");
    emitFillBuffer(b, env, f, rng, input, b.cLong(len));

    // Hash chains: head[h] = last position with hash h; prev[p] =
    // previous position with the same hash.
    Value *head = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * hashSize)}),
        tc.pointerTo(tc.longTy()), "head");
    Value *prev = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * len)}),
        tc.pointerTo(tc.longTy()), "prev");
    {
        Loop i(b, b.cLong(0), b.cLong(hashSize), "hz");
        b.store(b.cLong(-1), b.gepAt(head, i.iv()));
        i.next();
    }

    Value *tokens = b.alloca_(tc.longTy(), nullptr, "tokens");
    Value *matched = b.alloca_(tc.longTy(), nullptr, "matched");
    Value *hashAcc = b.alloca_(tc.ulongTy(), nullptr, "hacc");
    b.store(b.cLong(0), tokens);
    b.store(b.cLong(0), matched);
    b.store(b.cULong(0), hashAcc);

    Value *pos = b.alloca_(tc.longTy(), nullptr, "pos");
    b.store(b.cLong(0), pos);
    BasicBlock *zHead = f->createBlock("lz.head");
    BasicBlock *zBody = f->createBlock("lz.body");
    BasicBlock *zExit = f->createBlock("lz.exit");
    b.br(zHead);
    b.setInsertPoint(zHead);
    Value *p = b.load(pos);
    b.condBr(b.setLT(p, b.cLong(len - 3)), zBody, zExit);
    b.setInsertPoint(zBody);

    // 3-byte rolling hash.
    Value *b0 = b.cast_(b.load(b.gepAt(input, p)), tc.ulongTy());
    Value *b1 = b.cast_(
        b.load(b.gepAt(input, b.add(p, b.cLong(1)))), tc.ulongTy());
    Value *b2 = b.cast_(
        b.load(b.gepAt(input, b.add(p, b.cLong(2)))), tc.ulongTy());
    Value *h = b.rem(
        b.bxor(b.bxor(b.mul(b0, b.cULong(131)),
                      b.mul(b1, b.cULong(31))),
               b2),
        b.cULong((uint64_t)hashSize), "h");
    Value *hIdx = b.cast_(h, tc.longTy());

    // Walk the chain (bounded) looking for the longest match.
    Value *bestLen = b.alloca_(tc.longTy(), nullptr, "bestlen");
    Value *cand = b.alloca_(tc.longTy(), nullptr, "cand");
    Value *depth = b.alloca_(tc.longTy(), nullptr, "depth");
    b.store(b.cLong(0), bestLen);
    b.store(b.load(b.gepAt(head, hIdx)), cand);
    b.store(b.cLong(0), depth);
    BasicBlock *mHead = f->createBlock("match.head");
    BasicBlock *mBody = f->createBlock("match.body");
    BasicBlock *mExit = f->createBlock("match.exit");
    b.br(mHead);
    b.setInsertPoint(mHead);
    Value *c = b.load(cand);
    Value *dOK = b.setLT(b.load(depth), b.cLong(8));
    Value *cOK = b.setGE(c, b.cLong(0));
    b.condBr(b.band(dOK, cOK), mBody, mExit);
    b.setInsertPoint(mBody);
    // Extend the match (cap 16 bytes, stay in bounds).
    Value *mlen = b.alloca_(tc.longTy(), nullptr, "mlen");
    b.store(b.cLong(0), mlen);
    BasicBlock *eHead = f->createBlock("ext.head");
    BasicBlock *eBody = f->createBlock("ext.body");
    BasicBlock *eExit = f->createBlock("ext.exit");
    b.br(eHead);
    b.setInsertPoint(eHead);
    Value *k = b.load(mlen);
    Value *inR = b.band(
        b.setLT(k, b.cLong(16)),
        b.setLT(b.add(p, k), b.cLong(len)));
    BasicBlock *eCmp = f->createBlock("ext.cmp");
    b.condBr(inR, eCmp, eExit);
    b.setInsertPoint(eCmp);
    Value *sA = b.load(b.gepAt(input, b.add(c, k)));
    Value *sB = b.load(b.gepAt(input, b.add(p, k)));
    b.condBr(b.setEQ(sA, sB), eBody, eExit);
    b.setInsertPoint(eBody);
    b.store(b.add(k, b.cLong(1)), mlen);
    b.br(eHead);
    b.setInsertPoint(eExit);
    Value *got = b.load(mlen);
    BasicBlock *better = f->createBlock("better");
    BasicBlock *mNext = f->createBlock("match.next");
    b.condBr(b.setGT(got, b.load(bestLen)), better, mNext);
    b.setInsertPoint(better);
    b.store(got, bestLen);
    b.br(mNext);
    b.setInsertPoint(mNext);
    b.store(b.load(b.gepAt(prev, c)), cand);
    b.store(b.add(b.load(depth), b.cLong(1)), depth);
    b.br(mHead);
    b.setInsertPoint(mExit);

    // Insert this position into the chain.
    b.store(b.load(b.gepAt(head, hIdx)), b.gepAt(prev, p));
    b.store(p, b.gepAt(head, hIdx));

    // Emit a token: a match advances by its length, else a literal.
    Value *bl = b.load(bestLen);
    BasicBlock *emitMatch = f->createBlock("emit.match");
    BasicBlock *emitLit = f->createBlock("emit.lit");
    BasicBlock *advanced = f->createBlock("advanced");
    b.condBr(b.setGE(bl, b.cLong(3)), emitMatch, emitLit);
    b.setInsertPoint(emitMatch);
    b.store(b.add(b.load(matched), bl), matched);
    Value *pm = b.add(p, bl);
    b.br(advanced);
    b.setInsertPoint(emitLit);
    Value *lit = b.cast_(b.load(b.gepAt(input, p)), tc.ulongTy());
    b.store(b.add(b.mul(b.load(hashAcc), b.cULong(257)), lit),
            hashAcc);
    Value *pl = b.add(p, b.cLong(1));
    b.br(advanced);
    b.setInsertPoint(advanced);
    PhiNode *np = b.phi(tc.longTy(), "np");
    np->addIncoming(pm, emitMatch);
    np->addIncoming(pl, emitLit);
    b.store(np, pos);
    b.store(b.add(b.load(tokens), b.cLong(1)), tokens);
    b.br(zHead);
    b.setInsertPoint(zExit);

    Value *hmod = b.cast_(
        b.rem(b.load(hashAcc), b.cULong(10000)), tc.longTy());
    Value *sum = b.add(
        b.add(b.mul(b.load(tokens), b.cLong(1000000)),
              b.mul(b.load(matched), b.cLong(10000))),
        hmod, "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 197.parser --------------------------------------------------------------

std::unique_ptr<Module>
buildParser(int scale)
{
    int exprs = 24 * scale;
    Env env("197.parser");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // Token stream state (globals): tokens, position, length.
    auto *bytePtrTy = tc.pointerTo(tc.ubyteTy());
    GlobalVariable *gTokens =
        env.m->createGlobal(bytePtrTy, "tokens", nullptr);
    GlobalVariable *gPos =
        env.m->createGlobal(tc.longTy(), "pos", nullptr);
    GlobalVariable *gLen =
        env.m->createGlobal(tc.longTy(), "len", nullptr);

    // Token encoding: 0-9 digit, 10 '+', 11 '-', 12 '*', 13 '/',
    // 14 '(', 15 ')', 16 end.
    Function *peek =
        env.def("peek", tc.ubyteTy(), {}, Linkage::Internal);
    {
        IRBuilder pb(*env.m, peek->entryBlock());
        Value *p = pb.load(gPos);
        BasicBlock *in = peek->createBlock("in");
        BasicBlock *out = peek->createBlock("out");
        pb.condBr(pb.setLT(p, pb.load(gLen)), in, out);
        pb.setInsertPoint(in);
        Value *t = pb.load(pb.gepAt(pb.load(gTokens), p));
        pb.ret(t);
        pb.setInsertPoint(out);
        pb.ret(pb.cUByte(16));
    }
    Function *advance =
        env.def("advance", tc.voidTy(), {}, Linkage::Internal);
    {
        IRBuilder ab(*env.m, advance->entryBlock());
        ab.store(ab.add(ab.load(gPos), ab.cLong(1)), gPos);
        ab.retVoid();
    }

    // Mutually recursive parseExpr/parseTerm/parseFactor. A syntax
    // error executes `unwind`, caught by the invoke in main.
    Function *parseExpr = env.def("parseExpr", tc.longTy(), {},
                                  Linkage::Internal);
    Function *parseTerm = env.def("parseTerm", tc.longTy(), {},
                                  Linkage::Internal);
    Function *parseFactor = env.def("parseFactor", tc.longTy(), {},
                                    Linkage::Internal);

    // parseFactor: digit | '(' expr ')' | error.
    {
        IRBuilder fb(*env.m, parseFactor->entryBlock());
        Value *t = fb.call(peek, {}, "t");
        BasicBlock *digit = parseFactor->createBlock("digit");
        BasicBlock *paren = parseFactor->createBlock("paren");
        BasicBlock *error = parseFactor->createBlock("error");
        MBrInst *sw = fb.mbr(fb.cast_(t, tc.intTy(), "ti"), error);
        // mbr needs an integer scrutinee; dispatch digits and '('.
        for (int d = 0; d < 10; ++d)
            sw->addCase(env.m->constantInt(tc.intTy(), d), digit);
        sw->addCase(env.m->constantInt(tc.intTy(), 14), paren);
        parseFactor->entryBlock();

        fb.setInsertPoint(digit);
        fb.call(advance, {});
        fb.ret(fb.cast_(t, tc.longTy()));

        fb.setInsertPoint(paren);
        fb.call(advance, {});
        Value *inner = fb.call(parseExpr, {}, "inner");
        Value *closer = fb.call(peek, {}, "closer");
        BasicBlock *closed = parseFactor->createBlock("closed");
        fb.condBr(fb.setEQ(closer, fb.cUByte(15)), closed, error);
        fb.setInsertPoint(closed);
        fb.call(advance, {});
        fb.ret(inner);

        fb.setInsertPoint(error);
        fb.unwind();
    }

    // parseTerm: factor (('*'|'/') factor)*.
    {
        IRBuilder tb(*env.m, parseTerm->entryBlock());
        Value *accSlot = tb.alloca_(tc.longTy(), nullptr, "acc");
        tb.store(tb.call(parseFactor, {}, "first"), accSlot);
        BasicBlock *head = parseTerm->createBlock("head");
        BasicBlock *mulB = parseTerm->createBlock("mul");
        BasicBlock *divB = parseTerm->createBlock("div");
        BasicBlock *done = parseTerm->createBlock("done");
        tb.br(head);
        tb.setInsertPoint(head);
        Value *t = tb.call(peek, {}, "t");
        MBrInst *sw =
            tb.mbr(tb.cast_(t, tc.intTy()), done);
        sw->addCase(env.m->constantInt(tc.intTy(), 12), mulB);
        sw->addCase(env.m->constantInt(tc.intTy(), 13), divB);
        tb.setInsertPoint(mulB);
        tb.call(advance, {});
        Value *rhsM = tb.call(parseFactor, {}, "rhs");
        tb.store(tb.mul(tb.load(accSlot), rhsM), accSlot);
        tb.br(head);
        tb.setInsertPoint(divB);
        tb.call(advance, {});
        Value *rhsD = tb.call(parseFactor, {}, "rhs");
        // Division by a parsed zero is a real LLVA exception unless
        // guarded; the workload guards it (bias rhs by +1).
        Value *safe = tb.add(rhsD, tb.cLong(1));
        tb.store(tb.div(tb.load(accSlot), safe), accSlot);
        tb.br(head);
        tb.setInsertPoint(done);
        tb.ret(tb.load(accSlot));
    }

    // parseExpr: term (('+'|'-') term)*.
    {
        IRBuilder eb(*env.m, parseExpr->entryBlock());
        Value *accSlot = eb.alloca_(tc.longTy(), nullptr, "acc");
        eb.store(eb.call(parseTerm, {}, "first"), accSlot);
        BasicBlock *head = parseExpr->createBlock("head");
        BasicBlock *addB = parseExpr->createBlock("add");
        BasicBlock *subB = parseExpr->createBlock("sub");
        BasicBlock *done = parseExpr->createBlock("done");
        eb.br(head);
        eb.setInsertPoint(head);
        Value *t = eb.call(peek, {}, "t");
        MBrInst *sw = eb.mbr(eb.cast_(t, tc.intTy()), done);
        sw->addCase(env.m->constantInt(tc.intTy(), 10), addB);
        sw->addCase(env.m->constantInt(tc.intTy(), 11), subB);
        eb.setInsertPoint(addB);
        eb.call(advance, {});
        eb.store(eb.add(eb.load(accSlot),
                        eb.call(parseTerm, {}, "rhs")),
                 accSlot);
        eb.br(head);
        eb.setInsertPoint(subB);
        eb.call(advance, {});
        eb.store(eb.sub(eb.load(accSlot),
                        eb.call(parseTerm, {}, "rhs")),
                 accSlot);
        eb.br(head);
        eb.setInsertPoint(done);
        eb.ret(eb.load(accSlot));
    }

    // main: generate token streams (a few malformed), parse each
    // under an invoke, and fold values + error count.
    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());
    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x243f6a8885a308d3ull), rng);

    int maxTok = 31;
    Value *buf = b.call(env.mallocFn, {b.cULong((uint64_t)maxTok)});
    b.store(b.cast_(buf, bytePtrTy), gTokens);

    Value *values = b.alloca_(tc.longTy(), nullptr, "values");
    Value *errors = b.alloca_(tc.longTy(), nullptr, "errors");
    b.store(b.cLong(0), values);
    b.store(b.cLong(0), errors);

    {
        Loop e(b, b.cLong(0), b.cLong(exprs), "expr");
        // Build "d op d op d ..." with occasional bad tokens.
        Value *tok = b.load(gTokens, "tok");
        Value *n = b.alloca_(tc.longTy(), nullptr, "n");
        b.store(b.cLong(0), n);
        {
            Loop k(b, b.cLong(0), b.cLong(7), "tk");
            Value *r1 = lcgNext(b, rng);
            Value *digit = b.cast_(
                b.rem(b.shr(r1, b.cUByte(5)), b.cULong(10)),
                tc.ubyteTy());
            Value *slot = b.load(n);
            b.store(digit, b.gepAt(tok, slot));
            Value *r2 = lcgNext(b, rng);
            // Operators 10..13; value 15 (')') sometimes — that is
            // the malformed case the unwind path handles.
            Value *opsel = b.rem(b.shr(r2, b.cUByte(9)),
                                 b.cULong(24));
            Value *isBad = b.setGE(opsel, b.cULong(23));
            BasicBlock *bad = f->createBlock("bad");
            BasicBlock *good = f->createBlock("good");
            BasicBlock *stored = f->createBlock("stored");
            b.condBr(isBad, bad, good);
            b.setInsertPoint(bad);
            Value *badTok = b.cUByte(15);
            b.br(stored);
            b.setInsertPoint(good);
            Value *goodTok = b.cast_(
                b.add(b.rem(opsel, b.cULong(4)), b.cULong(10)),
                tc.ubyteTy());
            b.br(stored);
            b.setInsertPoint(stored);
            PhiNode *opTok = b.phi(tc.ubyteTy(), "optok");
            opTok->addIncoming(badTok, bad);
            opTok->addIncoming(goodTok, good);
            b.store(opTok,
                    b.gepAt(tok, b.add(slot, b.cLong(1))));
            b.store(b.add(slot, b.cLong(2)), n);
            k.next();
        }
        // Terminate with a digit + end marker.
        Value *r3 = lcgNext(b, rng);
        Value *lastDigit = b.cast_(
            b.rem(b.shr(r3, b.cUByte(7)), b.cULong(10)),
            tc.ubyteTy());
        Value *endSlot = b.load(n);
        b.store(lastDigit, b.gepAt(tok, endSlot));
        b.store(b.cUByte(16),
                b.gepAt(tok, b.add(endSlot, b.cLong(1))));
        b.store(b.cLong(0), gPos);
        b.store(b.add(endSlot, b.cLong(2)), gLen);

        BasicBlock *okBB = f->createBlock("parse.ok");
        BasicBlock *errBB = f->createBlock("parse.err");
        BasicBlock *joined = f->createBlock("parse.join");
        Value *v = b.invoke(parseExpr, {}, okBB, errBB, "v");
        b.setInsertPoint(okBB);
        b.store(b.add(b.load(values),
                      b.rem(v, b.cLong(1000003))),
                values);
        b.br(joined);
        b.setInsertPoint(errBB);
        b.store(b.add(b.load(errors), b.cLong(1)), errors);
        b.br(joined);
        b.setInsertPoint(joined);
        e.next();
    }

    Value *sum = b.add(b.mul(b.load(errors), b.cLong(10000000)),
                       b.rem(b.load(values), b.cLong(10000000)),
                       "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

// --- 255.vortex --------------------------------------------------------------

std::unique_ptr<Module>
buildVortex(int scale)
{
    int inserts = 120 * scale;
    int lookups = 200 * scale;
    int buckets = 64;
    Env env("255.vortex");
    TypeContext &tc = env.types();
    IRBuilder b(*env.m);

    // struct Rec { ulong key; long val; Rec *next }
    StructType *recTy = tc.namedStruct("struct.Rec", {});
    recTy->setBody(
        {tc.ulongTy(), tc.longTy(), tc.pointerTo(recTy)});
    PointerType *recPtr = tc.pointerTo(recTy);

    Function *f = env.def("main", tc.intTy(), {});
    b.setInsertPoint(f->entryBlock());
    Value *rng = b.alloca_(tc.ulongTy(), nullptr, "rng");
    b.store(b.cULong(0x452821e638d01377ull), rng);

    Value *table = b.cast_(
        b.call(env.mallocFn, {b.cULong(8ull * buckets)}),
        tc.pointerTo(recPtr), "table");
    {
        Loop i(b, b.cLong(0), b.cLong(buckets), "tz");
        b.store(b.cNull(recTy), b.gepAt(table, i.iv()));
        i.next();
    }

    uint64_t recSize = recTy->sizeInBytes(8);
    auto bucketOf = [&](Value *key) {
        return b.cast_(b.rem(key, b.cULong((uint64_t)buckets)),
                       tc.longTy(), "bucket");
    };

    // Insert phase.
    {
        Loop i(b, b.cLong(0), b.cLong(inserts), "ins");
        Value *r = lcgNext(b, rng);
        Value *key = b.rem(b.shr(r, b.cUByte(7)),
                           b.cULong(4096), "key");
        Value *raw = b.call(env.mallocFn, {b.cULong(recSize)});
        Value *rec = b.cast_(raw, recPtr, "rec");
        b.store(key, b.gepField(rec, 0));
        b.store(i.iv(), b.gepField(rec, 1));
        Value *slot = b.gepAt(table, bucketOf(key));
        b.store(b.load(slot), b.gepField(rec, 2));
        b.store(rec, slot);
        i.next();
    }

    // Lookup phase (some keys absent).
    Value *found = b.alloca_(tc.longTy(), nullptr, "found");
    Value *valSum = b.alloca_(tc.longTy(), nullptr, "valsum");
    b.store(b.cLong(0), found);
    b.store(b.cLong(0), valSum);
    {
        Loop i(b, b.cLong(0), b.cLong(lookups), "look");
        Value *r = lcgNext(b, rng);
        Value *key = b.rem(b.shr(r, b.cUByte(11)),
                           b.cULong(4096), "key");
        Value *cur = b.alloca_(recPtr, nullptr, "cur");
        b.store(b.load(b.gepAt(table, bucketOf(key))), cur);
        BasicBlock *wHead = f->createBlock("lk.head");
        BasicBlock *wBody = f->createBlock("lk.body");
        BasicBlock *wHit = f->createBlock("lk.hit");
        BasicBlock *wExit = f->createBlock("lk.exit");
        b.br(wHead);
        b.setInsertPoint(wHead);
        Value *c = b.load(cur);
        b.condBr(b.setEQ(c, b.cNull(recTy)), wExit, wBody);
        b.setInsertPoint(wBody);
        Value *k = b.load(b.gepField(c, 0));
        b.condBr(b.setEQ(k, key), wHit, wExit);
        b.setInsertPoint(wHit);
        b.store(b.add(b.load(found), b.cLong(1)), found);
        b.store(b.add(b.load(valSum), b.load(b.gepField(c, 1))),
                valSum);
        b.br(wExit);
        b.setInsertPoint(wExit);
        // Walk only the first matching/leading entry per paper-ish
        // store behaviour: advance one step and retry while neither
        // hit nor null. (Bounded by construction.)
        BasicBlock *step = f->createBlock("lk.step");
        BasicBlock *out = f->createBlock("lk.out");
        Value *c2 = b.load(cur);
        Value *isNull = b.setEQ(c2, b.cNull(recTy));
        b.condBr(isNull, out, step);
        b.setInsertPoint(step);
        Value *k2 = b.load(b.gepField(c2, 0));
        BasicBlock *cont = f->createBlock("lk.cont");
        b.condBr(b.setEQ(k2, key), out, cont);
        b.setInsertPoint(cont);
        b.store(b.load(b.gepField(c2, 2)), cur);
        b.br(wHead);
        b.setInsertPoint(out);
        i.next();
    }

    // Delete half the buckets' heads (free churn).
    Value *freed = b.alloca_(tc.longTy(), nullptr, "freed");
    b.store(b.cLong(0), freed);
    {
        Loop i(b, b.cLong(0), b.cLong(buckets / 2), "del");
        Value *slot = b.gepAt(table, i.iv());
        Value *head = b.load(slot);
        BasicBlock *have = f->createBlock("have");
        BasicBlock *nxt = f->createBlock("dnext");
        b.condBr(b.setEQ(head, b.cNull(recTy)), nxt, have);
        b.setInsertPoint(have);
        b.store(b.load(b.gepField(head, 2)), slot);
        b.call(env.freeFn,
               {b.cast_(head, tc.pointerTo(tc.ubyteTy()))});
        b.store(b.add(b.load(freed), b.cLong(1)), freed);
        b.br(nxt);
        b.setInsertPoint(nxt);
        i.next();
    }

    Value *sum = b.add(
        b.add(b.mul(b.load(found), b.cLong(1000000)),
              b.mul(b.load(freed), b.cLong(10000))),
        b.rem(b.load(valSum), b.cLong(10000)), "sum");
    emitPutInt(b, env, sum);
    b.ret(b.cast_(sum, tc.intTy()));
    return std::move(env.m);
}

} // namespace workloads
} // namespace llva
