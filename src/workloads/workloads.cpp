#include "workloads/workloads.h"

#include "support/error.h"

namespace llva {

namespace workloads {

std::unique_ptr<Module> buildAnagram(int);
std::unique_ptr<Module> buildKS(int);
std::unique_ptr<Module> buildFT(int);
std::unique_ptr<Module> buildYacr2(int);
std::unique_ptr<Module> buildBC(int);
std::unique_ptr<Module> buildArt(int);
std::unique_ptr<Module> buildEquake(int);
std::unique_ptr<Module> buildAmmp(int);
std::unique_ptr<Module> buildMCF(int);
std::unique_ptr<Module> buildVPR(int);
std::unique_ptr<Module> buildTwolf(int);
std::unique_ptr<Module> buildCrafty(int);
std::unique_ptr<Module> buildGap(int);
std::unique_ptr<Module> buildBzip2(int);
std::unique_ptr<Module> buildGzip(int);
std::unique_ptr<Module> buildParser(int);
std::unique_ptr<Module> buildVortex(int);

} // namespace workloads

const std::vector<WorkloadInfo> &
allWorkloads()
{
    using namespace workloads;
    static const std::vector<WorkloadInfo> table = {
        {"ptrdist-anagram", "anagram signature matching",
         buildAnagram, 2},
        {"ptrdist-ks", "Kernighan-Lin graph partitioning", buildKS,
         2},
        {"ptrdist-ft", "minimum spanning tree over adjacency lists",
         buildFT, 2},
        {"ptrdist-yacr2", "channel routing by track assignment",
         buildYacr2, 2},
        {"ptrdist-bc", "arbitrary-precision calculator", buildBC, 2},
        {"179.art", "neural network recognition", buildArt, 2},
        {"183.equake", "sparse matrix-vector products", buildEquake,
         2},
        {"181.mcf", "network flow cost relaxation", buildMCF, 2},
        {"256.bzip2", "RLE + move-to-front compression", buildBzip2,
         2},
        {"164.gzip", "LZ77 with hash chains", buildGzip, 2},
        {"197.parser", "recursive-descent expression parsing",
         buildParser, 2},
        {"188.ammp", "n-body molecular dynamics", buildAmmp, 2},
        {"175.vpr", "placement annealing", buildVPR, 2},
        {"300.twolf", "standard-cell swapping over linked rows",
         buildTwolf, 2},
        {"186.crafty", "bitboard move generation", buildCrafty, 2},
        {"255.vortex", "hash-indexed object store", buildVortex, 2},
        {"254.gap", "permutation group orders", buildGap, 2},
    };
    return table;
}

std::unique_ptr<Module>
buildWorkload(const std::string &name, int scale)
{
    for (const WorkloadInfo &info : allWorkloads())
        if (info.name == name)
            return info.build(scale > 0 ? scale
                                        : info.defaultScale);
    fatal("unknown workload '%s'", name.c_str());
}

} // namespace llva
