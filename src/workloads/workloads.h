/**
 * @file
 * The benchmark workload suite.
 *
 * The paper evaluates LLVA on the PtrDist benchmarks and SPEC
 * CINT2000 (+ two CFP2000 codes) compiled from C. Those sources are
 * not available here, so each row of Table 2 is represented by a
 * synthetic program with the same computational character —
 * pointer-chasing data structures, compression, parsing, numeric
 * kernels — constructed directly in LLVA via the IRBuilder API (see
 * DESIGN.md's substitution table). Every program is deterministic,
 * prints a checksum, and returns it, so the interpreter and both
 * machine simulators can be differentially tested on the full suite.
 */

#ifndef LLVA_WORKLOADS_WORKLOADS_H
#define LLVA_WORKLOADS_WORKLOADS_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace llva {

struct WorkloadInfo
{
    std::string name;        ///< e.g. "ptrdist-anagram"
    std::string description; ///< what the paper's original did
    /** Build the module; \p scale grows the input size. */
    std::function<std::unique_ptr<Module>(int scale)> build;
    int defaultScale;
};

/** All workloads, in Table 2 row order. */
const std::vector<WorkloadInfo> &allWorkloads();

/** Build one workload by name at its default (or given) scale. */
std::unique_ptr<Module> buildWorkload(const std::string &name,
                                      int scale = 0);

} // namespace llva

#endif // LLVA_WORKLOADS_WORKLOADS_H
