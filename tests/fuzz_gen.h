/**
 * @file
 * Structured random-program generator for differential testing.
 *
 * Generates well-typed, verifier-clean, terminating LLVA programs by
 * construction: arithmetic over a live-value pool, guarded divisions,
 * nested if/else, bounded counted loops (phi- or memory-carried),
 * stack arrays with in-bounds indexing, helper-function calls, and a
 * final checksum fold. Programs are deterministic in their seed, so
 * every engine must produce the identical checksum and output.
 */

#ifndef LLVA_TESTS_FUZZ_GEN_H
#define LLVA_TESTS_FUZZ_GEN_H

#include <random>
#include <vector>

#include "ir/ir_builder.h"

namespace llva {
namespace fuzz {

class ProgramGen
{
  public:
    explicit ProgramGen(uint64_t seed)
        : rng_(seed)
    {}

    std::unique_ptr<Module>
    generate()
    {
        m_ = std::make_unique<Module>("fuzz");
        TypeContext &tc = m_->types();
        putint_ = m_->createFunction(
            tc.functionOf(tc.voidTy(), {tc.longTy()}), "putint");

        // A few helper functions main can call.
        unsigned helpers = pick(0, 2);
        for (unsigned h = 0; h < helpers; ++h)
            makeHelper(h);

        Function *main = m_->createFunction(
            tc.functionOf(tc.intTy(), {}), "main");
        BasicBlock *entry = main->createBlock("entry");
        IRBuilder b(*m_, entry);

        std::vector<Value *> pool = {b.cLong(pick(1, 100)),
                                     b.cLong(pick(1, 100))};
        genBody(b, main, pool, /*depth=*/0);

        // Fold the live pool into one checksum.
        Value *sum = fold(b, pool);
        b.call(putint_, {sum});
        b.ret(b.cast_(sum, tc.intTy()));
        return std::move(m_);
    }

  private:
    uint64_t
    pick(uint64_t lo, uint64_t hi)
    {
        return lo + rng_() % (hi - lo + 1);
    }

    Value *
    anyOf(IRBuilder &b, std::vector<Value *> &pool)
    {
        (void)b;
        return pool[pick(0, pool.size() - 1)];
    }

    Value *
    fold(IRBuilder &b, std::vector<Value *> &pool)
    {
        Value *sum = b.cLong(0);
        for (Value *v : pool)
            sum = b.add(b.mul(sum, b.cLong(31)), v);
        // Clamp so no engine-dependent overflow printing occurs
        // (the arithmetic itself is 2's-complement and identical).
        return b.rem(sum, b.cLong(1000000007));
    }

    void
    makeHelper(unsigned index)
    {
        TypeContext &tc = m_->types();
        Function *f = m_->createFunction(
            tc.functionOf(tc.longTy(), {tc.longTy(), tc.longTy()}),
            "helper" + std::to_string(index), Linkage::Internal);
        BasicBlock *entry = f->createBlock("entry");
        IRBuilder b(*m_, entry);
        std::vector<Value *> pool = {f->arg(0), f->arg(1),
                                     b.cLong(pick(1, 50))};
        genBody(b, f, pool, /*depth=*/2);
        b.ret(fold(b, pool));
        helpers_.push_back(f);
    }

    /** Emit 2-6 random statements into the current block chain. */
    void
    genBody(IRBuilder &b, Function *f, std::vector<Value *> &pool,
            int depth)
    {
        unsigned stmts = static_cast<unsigned>(pick(2, 6));
        for (unsigned s = 0; s < stmts; ++s) {
            switch (pick(0, depth >= 3 ? 1 : 5)) {
              case 0:
              case 1:
                genArith(b, pool);
                break;
              case 2:
                genIf(b, f, pool, depth);
                break;
              case 3:
                genLoop(b, f, pool, depth);
                break;
              case 4:
                genArray(b, f, pool, depth);
                break;
              case 5:
                genCall(b, pool);
                break;
            }
        }
    }

    void
    genArith(IRBuilder &b, std::vector<Value *> &pool)
    {
        Value *lhs = anyOf(b, pool);
        Value *rhs = anyOf(b, pool);
        Value *v = nullptr;
        switch (pick(0, 7)) {
          case 0: v = b.add(lhs, rhs); break;
          case 1: v = b.sub(lhs, rhs); break;
          case 2: v = b.mul(lhs, rhs); break;
          case 3: {
            // Guarded: |rhs| could still be 0 after or; or with 1.
            Value *nz = b.bor(rhs, b.cLong(1));
            v = b.div(lhs, nz);
            break;
          }
          case 4: {
            Value *nz = b.bor(rhs, b.cLong(1));
            v = b.rem(lhs, nz);
            break;
          }
          case 5: v = b.bxor(lhs, rhs); break;
          case 6:
            v = b.shl(lhs, b.cUByte(static_cast<uint8_t>(
                               pick(0, 7))));
            break;
          case 7:
            v = b.shr(lhs, b.cUByte(static_cast<uint8_t>(
                               pick(0, 7))));
            break;
        }
        pool.push_back(v);
        if (pool.size() > 8)
            pool.erase(pool.begin());
    }

    void
    genIf(IRBuilder &b, Function *f, std::vector<Value *> &pool,
          int depth)
    {
        Value *cond;
        switch (pick(0, 2)) {
          case 0:
            cond = b.setLT(anyOf(b, pool), anyOf(b, pool));
            break;
          case 1:
            cond = b.setEQ(
                b.rem(anyOf(b, pool), b.cLong(3)), b.cLong(0));
            break;
          default:
            cond = b.setGE(anyOf(b, pool), b.cLong(pick(0, 64)));
            break;
        }
        BasicBlock *thenB = f->createBlock("then");
        BasicBlock *elseB = f->createBlock("else");
        BasicBlock *join = f->createBlock("join");
        b.condBr(cond, thenB, elseB);

        Value *base = anyOf(b, pool);
        b.setInsertPoint(thenB);
        std::vector<Value *> tpool = pool;
        genBody(b, f, tpool, depth + 1);
        Value *tval = b.add(tpool.back(), base);
        BasicBlock *tend = b.insertBlock();
        b.br(join);

        b.setInsertPoint(elseB);
        std::vector<Value *> epool = pool;
        genBody(b, f, epool, depth + 1);
        Value *eval = b.bxor(epool.back(), base);
        BasicBlock *eend = b.insertBlock();
        b.br(join);

        b.setInsertPoint(join);
        PhiNode *phi = b.phi(tval->type(), "merge");
        phi->addIncoming(tval, tend);
        phi->addIncoming(eval, eend);
        pool.push_back(phi);
    }

    void
    genLoop(IRBuilder &b, Function *f, std::vector<Value *> &pool,
            int depth)
    {
        Module &m = *m_;
        TypeContext &tc = m.types();
        int64_t trip = static_cast<int64_t>(pick(1, 12));

        bool memory_carried = pick(0, 1) == 0;
        Value *slot = nullptr;
        if (memory_carried) {
            slot = b.alloca_(tc.longTy(), nullptr, "carry");
            b.store(anyOf(b, pool), slot);
        }

        BasicBlock *header = f->createBlock("loop.header");
        BasicBlock *body = f->createBlock("loop.body");
        BasicBlock *exit = f->createBlock("loop.exit");
        BasicBlock *pre = b.insertBlock();
        Value *init = anyOf(b, pool);
        b.br(header);

        b.setInsertPoint(header);
        PhiNode *iv = b.phi(tc.longTy(), "iv");
        iv->addIncoming(b.cLong(0), pre);
        PhiNode *acc = nullptr;
        if (!memory_carried) {
            acc = b.phi(tc.longTy(), "acc");
            acc->addIncoming(init, pre);
        }
        Value *cond = b.setLT(iv, b.cLong(trip));
        b.condBr(cond, body, exit);

        b.setInsertPoint(body);
        Value *cur =
            memory_carried ? b.load(slot) : static_cast<Value *>(acc);
        Value *next = b.add(b.mul(cur, b.cLong(3)),
                            b.add(iv, b.cLong(pick(0, 9))));
        if (depth < 2 && pick(0, 2) == 0) {
            std::vector<Value *> lpool = {next, iv};
            genArith(b, lpool);
            next = lpool.back();
        }
        if (memory_carried)
            b.store(next, slot);
        Value *iv2 = b.add(iv, b.cLong(1));
        iv->addIncoming(iv2, b.insertBlock());
        if (acc)
            acc->addIncoming(next, b.insertBlock());
        b.br(header);

        b.setInsertPoint(exit);
        Value *result =
            memory_carried ? b.load(slot) : static_cast<Value *>(acc);
        pool.push_back(result);
    }

    void
    genArray(IRBuilder &b, Function *f, std::vector<Value *> &pool,
             int depth)
    {
        (void)depth;
        TypeContext &tc = m_->types();
        int64_t n = static_cast<int64_t>(pick(2, 8));
        Value *arr = b.alloca_(tc.arrayOf(tc.longTy(), n), nullptr,
                               "arr");

        // Initialize all slots, then do a few in-bounds updates.
        for (int64_t i = 0; i < n; ++i)
            b.store(b.cLong(static_cast<int64_t>(pick(0, 99))),
                    b.gep(arr, {b.cLong(0), b.cLong(i)}));
        unsigned updates = static_cast<unsigned>(pick(1, 3));
        for (unsigned u = 0; u < updates; ++u) {
            Value *idx = b.rem(
                b.band(anyOf(b, pool),
                       b.cLong(0x7fffffffffffffffll)),
                b.cLong(n));
            Value *slot = b.gep(arr, {b.cLong(0), idx});
            Value *v = b.add(b.load(slot), anyOf(b, pool));
            b.store(v, slot);
        }
        // Fold the array.
        Value *sum = b.cLong(0);
        for (int64_t i = 0; i < n; ++i)
            sum = b.add(sum,
                        b.load(b.gep(arr, {b.cLong(0),
                                           b.cLong(i)})));
        pool.push_back(sum);
        (void)f;
    }

    void
    genCall(IRBuilder &b, std::vector<Value *> &pool)
    {
        if (helpers_.empty()) {
            genArith(b, pool);
            return;
        }
        Function *callee =
            helpers_[pick(0, helpers_.size() - 1)];
        Value *r = b.call(callee,
                          {anyOf(b, pool), anyOf(b, pool)});
        pool.push_back(r);
    }

    std::mt19937_64 rng_;
    std::unique_ptr<Module> m_;
    Function *putint_ = nullptr;
    std::vector<Function *> helpers_;
};

} // namespace fuzz
} // namespace llva

#endif // LLVA_TESTS_FUZZ_GEN_H
