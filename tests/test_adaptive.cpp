/**
 * @file
 * Adaptive reoptimization tests (paper Section 4.2 under LLEE):
 * runtime profiling of translated code, watermark-driven promotion
 * to the trace tier, persistence of profiles and trace-tier
 * translations across restarts, and fault containment of the trace
 * tier itself.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "llee/envelope.h"
#include "llee/llee.h"
#include "parser/parser.h"
#include "trace/profile.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

constexpr const char *kCache = "llee-native-cache";

// A hot, branch-biased loop: the adaptive tier's bread and butter.
// 'cold' sits between 'head' and 'hot' in source order so the trace
// layout has a measurable fallthrough to win back.
const char *kHotLoop = R"(
declare void %putint(long %v)
int %main() {
entry:
    br label %head
head:
    %i = phi int [ 0, %entry ], [ %i2, %latch ]
    %acc = phi int [ 0, %entry ], [ %acc2, %latch ]
    %r = rem int %i, 100
    %rare = seteq int %r, 99
    br bool %rare, label %cold, label %hot
cold:
    %c2 = mul int %acc, 2
    br label %latch
hot:
    %h2 = add int %acc, 1
    br label %latch
latch:
    %acc2 = phi int [ %c2, %cold ], [ %h2, %hot ]
    %i2 = add int %i, 1
    %more = setlt int %i2, 2000
    br bool %more, label %head, label %out
out:
    %wide = cast int %acc2 to long
    call void %putint(long %wide)
    ret int %acc2
}
)";

std::vector<uint8_t>
hotLoopBytecode()
{
    auto m = parseAssembly(kHotLoop).orDie();
    verifyOrDie(*m);
    return writeBytecode(*m);
}

/** The oracle's value/output for kHotLoop. */
std::pair<int64_t, std::string>
oracle()
{
    auto m = parseAssembly(kHotLoop).orDie();
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    auto r = interp.run(m->getFunction("main"));
    EXPECT_TRUE(r.ok());
    return {r.value.i, ctx.output()};
}

CodeGenOptions
adaptiveOpts(uint64_t watermark = 1000)
{
    CodeGenOptions opts;
    opts.optLevel = 2;
    opts.adaptive = true;
    opts.promoteWatermark = watermark;
    return opts;
}

EdgeProfile
sampleProfile()
{
    auto m = parseAssembly(kHotLoop).orDie();
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(m->getFunction("main"));
    return profile;
}

} // namespace

// --- Profile serialization -------------------------------------------

TEST(AdaptiveProfile, SerializationRoundTrip)
{
    EdgeProfile profile = sampleProfile();
    ASSERT_FALSE(profile.empty());

    std::vector<uint8_t> bytes = writeEdgeProfile(profile);
    ASSERT_FALSE(bytes.empty());
    Expected<EdgeProfile> back = readEdgeProfile(bytes);
    ASSERT_TRUE(back.ok()) << back.error().message();
    EdgeProfile p2 = back.take();

    EXPECT_EQ(p2.blocks, profile.blocks);
    EXPECT_EQ(p2.edges, profile.edges);
    EXPECT_EQ(p2.fnSamples, profile.fnSamples);
    EXPECT_EQ(p2.samples, profile.samples);
    EXPECT_EQ(profileHash(p2), profileHash(profile));
}

TEST(AdaptiveProfile, RejectsDamagedBytes)
{
    std::vector<uint8_t> bytes = writeEdgeProfile(sampleProfile());

    // Every single-byte flip must be caught by the CRC.
    for (size_t i = 0; i < bytes.size(); i += 7) {
        std::vector<uint8_t> bad = bytes;
        bad[i] ^= 0x40;
        EXPECT_FALSE(readEdgeProfile(bad).ok())
            << "flip at offset " << i << " accepted";
    }
    // Truncation at any point is damage too.
    for (size_t n : {size_t(0), size_t(3), bytes.size() / 2,
                     bytes.size() - 1}) {
        std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + n);
        EXPECT_FALSE(readEdgeProfile(cut).ok())
            << "truncation to " << n << " bytes accepted";
    }
    // Trailing garbage after a valid image is rejected.
    std::vector<uint8_t> padded = bytes;
    padded.push_back(0);
    EXPECT_FALSE(readEdgeProfile(padded).ok());
}

TEST(AdaptiveProfile, MergeAccumulates)
{
    EdgeProfile a = sampleProfile();
    EdgeProfile b = sampleProfile();
    uint64_t fn = functionId("main");
    uint64_t one = a.functionSamples(fn);
    ASSERT_GT(one, 0u);

    a.merge(b);
    EXPECT_EQ(a.functionSamples(fn), 2 * one);
    EXPECT_EQ(a.samples, 2 * b.samples);
    for (const auto &[id, c] : b.blocks)
        EXPECT_EQ(a.blocks.at(id), 2 * c);
}

// --- Runtime promotion -----------------------------------------------

TEST(Adaptive, HotLoopIsPromotedAtRuntime)
{
    auto [refValue, refOutput] = oracle();
    auto bc = hotLoopBytecode();

    for (const char *target : {"x86", "sparc"}) {
        MemoryStorage storage;
        LLEE llee(*getTarget(target), &storage, adaptiveOpts());
        LLEEResult r = llee.execute(bc);

        ASSERT_TRUE(r.exec.ok()) << target;
        EXPECT_EQ(r.exec.value.i, refValue) << target;
        EXPECT_EQ(r.output, refOutput) << target;
        // The loop crosses the watermark long before it finishes,
        // so main is promoted mid-run...
        EXPECT_GE(r.promotions, 1u) << target;
        EXPECT_EQ(r.promotionFailures, 0u) << target;
        EXPECT_GT(r.profileSamples, 0u) << target;
        // ...and the loop body dominates execution, so the formed
        // traces must cover most of it (acceptance: > 0.5).
        EXPECT_GT(r.traceCoverage, 0.5) << target;
        // Cold start: nothing was at the trace tier yet.
        EXPECT_EQ(r.traceTierLoaded, 0u) << target;
        EXPECT_FALSE(r.profileLoaded) << target;
    }
}

TEST(Adaptive, WarmRestartStartsAtTraceTierWithoutReprofiling)
{
    auto [refValue, refOutput] = oracle();
    auto bc = hotLoopBytecode();

    MemoryStorage storage;
    {
        LLEE cold(*getTarget("sparc"), &storage, adaptiveOpts());
        LLEEResult r1 = cold.execute(bc);
        ASSERT_TRUE(r1.exec.ok());
        ASSERT_GE(r1.promotions, 1u);
    }

    // Same storage, fresh environment — the paper's warm restart.
    LLEE warm(*getTarget("sparc"), &storage, adaptiveOpts());
    LLEEResult r2 = warm.execute(bc);
    ASSERT_TRUE(r2.exec.ok());
    EXPECT_EQ(r2.exec.value.i, refValue);
    EXPECT_EQ(r2.output, refOutput);

    // The trace-tier translation is reused straight from the cache
    // (verified through the envelope's achieved-tier field) and the
    // persisted profile is loaded, so nothing is re-promoted.
    EXPECT_GE(r2.traceTierLoaded, 1u);
    EXPECT_TRUE(r2.profileLoaded);
    EXPECT_EQ(r2.promotions, 0u);
    EXPECT_EQ(r2.functionsTranslatedOnline, 0u);
    EXPECT_GE(r2.cacheHits, 1u);
}

TEST(Adaptive, PromotedEnvelopeCarriesTierAndProfileHash)
{
    auto bc = hotLoopBytecode();
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage, adaptiveOpts());
    LLEEResult r = llee.execute(bc);
    ASSERT_TRUE(r.exec.ok());
    ASSERT_GE(r.promotions, 1u);

    // Inspect main's envelope directly: achieved tier must be the
    // trace tier, stamped with the hash of a non-empty profile.
    auto m = readBytecode(bc).orDie();
    std::string name = LLEE::translationKey(
        LLEE::programKey(bc), *m->getFunction("main"),
        *getTarget("sparc"), adaptiveOpts());
    std::vector<uint8_t> envelope;
    ASSERT_TRUE(storage.read(kCache, name, envelope));
    TranslationKey key;
    ASSERT_EQ(inspectTranslation(envelope, &key), EnvelopeStatus::Ok);
    EXPECT_EQ(key.tier, kTierTrace);
    EXPECT_NE(key.profileHash, 0u);

    // And it matches the hash of the persisted profile bytes.
    std::vector<uint8_t> profBytes;
    ASSERT_TRUE(storage.read(
        kCache, LLEE::programKey(bc) + ".profile", profBytes));
    Expected<EdgeProfile> persisted = readEdgeProfile(profBytes);
    ASSERT_TRUE(persisted.ok());
    EXPECT_EQ(key.profileHash, profileHash(persisted.take()));
}

TEST(Adaptive, CorruptPersistedProfileIsEvictedNotTrusted)
{
    auto bc = hotLoopBytecode();
    MemoryStorage storage;
    ASSERT_TRUE(storage.createCache(kCache));
    std::string profKey = LLEE::programKey(bc) + ".profile";
    ASSERT_TRUE(storage.write(kCache, profKey,
                              {0xde, 0xad, 0xbe, 0xef, 0x00}));

    LLEE llee(*getTarget("sparc"), &storage, adaptiveOpts());
    LLEEResult r = llee.execute(bc);
    ASSERT_TRUE(r.exec.ok());
    // The garbage was not loaded — profiling restarted from zero —
    // and the run still promoted and replaced the entry with a
    // valid profile.
    EXPECT_FALSE(r.profileLoaded);
    EXPECT_GE(r.promotions, 1u);
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(storage.read(kCache, profKey, bytes));
    EXPECT_TRUE(readEdgeProfile(bytes).ok());
}

TEST(Adaptive, FaultingTraceTierKeepsExistingTranslation)
{
    // The trace tier degrades like any other rung: a promotion whose
    // codegen faults is abandoned and the function keeps running on
    // its existing -O2 body, correctly.
    auto [refValue, refOutput] = oracle();
    auto bc = hotLoopBytecode();

    TranslationHooks hooks;
    hooks.beforeCodegen = [](const Function &, unsigned level) {
        if (level == kTierTrace)
            throw std::runtime_error("injected trace-tier fault");
    };

    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage, adaptiveOpts());
    llee.setHooks(hooks);
    LLEEResult r = llee.execute(bc);

    ASSERT_TRUE(r.exec.ok());
    EXPECT_EQ(r.exec.value.i, refValue);
    EXPECT_EQ(r.output, refOutput);
    EXPECT_EQ(r.promotions, 0u);
    EXPECT_GE(r.promotionFailures, 1u);
    // The failed promotion never reaches storage as a trace tier.
    auto m = readBytecode(bc).orDie();
    std::string name = LLEE::translationKey(
        LLEE::programKey(bc), *m->getFunction("main"),
        *getTarget("sparc"), adaptiveOpts());
    std::vector<uint8_t> envelope;
    ASSERT_TRUE(storage.read(kCache, name, envelope));
    TranslationKey key;
    ASSERT_EQ(inspectTranslation(envelope, &key), EnvelopeStatus::Ok);
    EXPECT_NE(key.tier, kTierTrace);
}

TEST(Adaptive, SimulatorProfileMatchesInterpreterOnHotBlocks)
{
    // The machine simulator profiles *translated* code, but stable
    // IDs resolve to the same names the interpreter sees (-O0 keeps
    // the CFG intact), so the hot-block counts must agree exactly.
    EdgeProfile interpProfile = sampleProfile();

    auto m = parseAssembly(kHotLoop).orDie();
    CodeGenOptions opts; // -O0: machine CFG mirrors the IR CFG
    ExecutionContext ctx(*m);
    CodeManager cm(*getTarget("sparc"), opts);
    MachineSimulator sim(ctx, cm);
    EdgeProfile simProfile;
    sim.setProfile(&simProfile);
    auto r = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok());

    Function *f = m->getFunction("main");
    for (const char *name : {"head", "hot", "cold", "latch"})
        EXPECT_EQ(simProfile.blockCount(f->findBlock(name)),
                  interpProfile.blockCount(f->findBlock(name)))
            << "block '" << name << "'";
    EXPECT_EQ(simProfile.edgeCount(f->findBlock("latch"),
                                   f->findBlock("head")),
              interpProfile.edgeCount(f->findBlock("latch"),
                                      f->findBlock("head")));
}
