/**
 * @file
 * Analysis tests: dominators and frontiers, natural loops, both
 * alias analyses (including the disjoint-data-structure property
 * that Automatic Pool Allocation relies on), and the call graph.
 */

#include <gtest/gtest.h>

#include "analysis/alias_analysis.h"
#include "analysis/call_graph.h"
#include "analysis/dominators.h"
#include "analysis/loop_info.h"
#include "ir/instructions.h"
#include "parser/parser.h"

using namespace llva;

namespace {

const char *kDiamond = R"(
int %f(bool %c) {
entry:
    br bool %c, label %a, label %b
a:
    br label %join
b:
    br label %join
join:
    %p = phi int [ 1, %a ], [ 2, %b ]
    ret int %p
}
)";

const char *kLoopNest = R"(
long %f(long %n) {
entry:
    br label %outer
outer:
    %i = phi long [ 0, %entry ], [ %i2, %outer.latch ]
    %oc = setlt long %i, %n
    br bool %oc, label %inner, label %exit
inner:
    %j = phi long [ 0, %outer ], [ %j2, %inner ]
    %ic = setlt long %j, %n
    %j2 = add long %j, 1
    br bool %ic, label %inner, label %outer.latch
outer.latch:
    %i2 = add long %i, 1
    br label %outer
exit:
    ret long %n
}
)";

} // namespace

TEST(Dominators, DiamondStructure)
{
    auto m = parseAssembly(kDiamond).orDie();
    Function *f = m->getFunction("f");
    DominatorTree dt(*f);

    BasicBlock *entry = f->findBlock("entry");
    BasicBlock *a = f->findBlock("a");
    BasicBlock *b = f->findBlock("b");
    BasicBlock *join = f->findBlock("join");

    EXPECT_EQ(dt.idom(entry), nullptr);
    EXPECT_EQ(dt.idom(a), entry);
    EXPECT_EQ(dt.idom(b), entry);
    EXPECT_EQ(dt.idom(join), entry);
    EXPECT_TRUE(dt.dominates(entry, join));
    EXPECT_FALSE(dt.dominates(a, join));
    EXPECT_TRUE(dt.dominates(a, a));
}

TEST(Dominators, FrontiersAtJoins)
{
    auto m = parseAssembly(kDiamond).orDie();
    Function *f = m->getFunction("f");
    DominatorTree dt(*f);
    BasicBlock *a = f->findBlock("a");
    BasicBlock *join = f->findBlock("join");
    const auto &df = dt.frontier(a);
    ASSERT_EQ(df.size(), 1u);
    EXPECT_EQ(df[0], join);
    EXPECT_TRUE(dt.frontier(join).empty());
}

TEST(Dominators, ReversePostOrderStartsAtEntry)
{
    auto m = parseAssembly(kLoopNest).orDie();
    Function *f = m->getFunction("f");
    auto rpo = reversePostOrder(*f);
    ASSERT_FALSE(rpo.empty());
    EXPECT_EQ(rpo[0], f->entryBlock());
    EXPECT_EQ(rpo.size(), f->size());
}

TEST(Dominators, InstructionLevelDominance)
{
    auto m = parseAssembly(kDiamond).orDie();
    Function *f = m->getFunction("f");
    DominatorTree dt(*f);
    BasicBlock *join = f->findBlock("join");
    auto *phi = cast<PhiNode>(join->front());
    // phi's use of constant is trivially fine; check the ret uses
    // the phi in the same block.
    Instruction *ret = join->terminator();
    EXPECT_TRUE(dt.dominates(phi, ret, 0));
    EXPECT_FALSE(dt.dominates(ret, phi, 0));
}

TEST(Dominators, UnreachableBlocksReported)
{
    auto m = parseAssembly(R"(
int %f() {
entry:
    ret int 0
dead:
    ret int 1
}
)").orDie();
    Function *f = m->getFunction("f");
    DominatorTree dt(*f);
    EXPECT_TRUE(dt.reachable(f->findBlock("entry")));
    EXPECT_FALSE(dt.reachable(f->findBlock("dead")));
}

TEST(LoopInfo, FindsNestedLoops)
{
    auto m = parseAssembly(kLoopNest).orDie();
    Function *f = m->getFunction("f");
    DominatorTree dt(*f);
    LoopInfo li(*f, dt);

    BasicBlock *outer = f->findBlock("outer");
    BasicBlock *inner = f->findBlock("inner");
    BasicBlock *exit = f->findBlock("exit");

    Loop *ol = li.loopFor(outer);
    Loop *il = li.loopFor(inner);
    ASSERT_NE(ol, nullptr);
    ASSERT_NE(il, nullptr);
    EXPECT_NE(ol, il);
    EXPECT_EQ(ol->header(), outer);
    EXPECT_EQ(il->header(), inner);
    EXPECT_EQ(il->parent(), ol);
    EXPECT_EQ(ol->depth(), 1u);
    EXPECT_EQ(il->depth(), 2u);
    EXPECT_EQ(li.loopFor(exit), nullptr);
    EXPECT_EQ(li.topLevelLoops().size(), 1u);
}

TEST(LoopInfo, LatchesAndExits)
{
    auto m = parseAssembly(kLoopNest).orDie();
    Function *f = m->getFunction("f");
    DominatorTree dt(*f);
    LoopInfo li(*f, dt);
    Loop *ol = li.loopFor(f->findBlock("outer"));
    ASSERT_NE(ol, nullptr);
    auto latches = ol->latches();
    ASSERT_EQ(latches.size(), 1u);
    EXPECT_EQ(latches[0], f->findBlock("outer.latch"));
    auto exits = ol->exitingBlocks();
    ASSERT_EQ(exits.size(), 1u);
    EXPECT_EQ(exits[0], f->findBlock("outer"));
    EXPECT_EQ(ol->preheader(), f->findBlock("entry"));
}

TEST(BasicAA, DistinctAllocasNoAlias)
{
    auto m = parseAssembly(R"(
void %f() {
entry:
    %a = alloca int
    %b = alloca int
    store int 1, int* %a
    store int 2, int* %b
    ret void
}
)").orDie();
    Function *f = m->getFunction("f");
    BasicAliasAnalysis aa(*m);
    auto it = f->entryBlock()->begin();
    Value *a = it->get();
    ++it;
    Value *b = it->get();
    EXPECT_EQ(aa.alias(a, b), AliasResult::NoAlias);
    EXPECT_EQ(aa.alias(a, a), AliasResult::MustAlias);
}

TEST(BasicAA, DistinctFieldsNoAlias)
{
    auto m = parseAssembly(R"(
%P = type { long, long }
void %f() {
entry:
    %s = alloca %P
    %f0 = getelementptr %P* %s, long 0, ubyte 0
    %f1 = getelementptr %P* %s, long 0, ubyte 1
    store long 1, long* %f0
    store long 2, long* %f1
    ret void
}
)").orDie();
    Function *f = m->getFunction("f");
    BasicAliasAnalysis aa(*m);
    auto it = f->entryBlock()->begin();
    ++it;
    Value *f0 = it->get();
    ++it;
    Value *f1 = it->get();
    EXPECT_EQ(aa.alias(f0, f1), AliasResult::NoAlias);
}

TEST(BasicAA, SameConstantOffsetMustAlias)
{
    auto m = parseAssembly(R"(
void %f(long* %p) {
entry:
    %a = getelementptr long* %p, long 3
    %b = getelementptr long* %p, long 3
    %c = getelementptr long* %p, long 4
    store long 0, long* %a
    store long 1, long* %b
    store long 2, long* %c
    ret void
}
)").orDie();
    Function *f = m->getFunction("f");
    BasicAliasAnalysis aa(*m);
    auto it = f->entryBlock()->begin();
    Value *a = it->get();
    ++it;
    Value *b = it->get();
    ++it;
    Value *c = it->get();
    EXPECT_EQ(aa.alias(a, b), AliasResult::MustAlias);
    EXPECT_EQ(aa.alias(a, c), AliasResult::NoAlias);
}

TEST(BasicAA, UnknownIndexMayAlias)
{
    auto m = parseAssembly(R"(
void %f(long* %p, long %i) {
entry:
    %a = getelementptr long* %p, long %i
    %b = getelementptr long* %p, long 2
    store long 0, long* %a
    store long 1, long* %b
    ret void
}
)").orDie();
    Function *f = m->getFunction("f");
    BasicAliasAnalysis aa(*m);
    auto it = f->entryBlock()->begin();
    Value *a = it->get();
    ++it;
    Value *b = it->get();
    EXPECT_EQ(aa.alias(a, b), AliasResult::MayAlias);
}

TEST(BasicAA, GlobalVsAllocaNoAlias)
{
    auto m = parseAssembly(R"(
%g = global long 0
void %f() {
entry:
    %a = alloca long
    store long 1, long* %a
    store long 2, long* %g
    ret void
}
)").orDie();
    Function *f = m->getFunction("f");
    BasicAliasAnalysis aa(*m);
    Value *a = f->entryBlock()->front();
    EXPECT_EQ(aa.alias(a, m->getGlobal("g")),
              AliasResult::NoAlias);
}

TEST(Steensgaard, DisjointStructuresSeparate)
{
    // Two lists built from two allocation sites that never mix:
    // DSA-style analysis should put them in different classes.
    auto m = parseAssembly(R"(
%N = type { long, %N* }
declare ubyte* %malloc(ulong %n)
void %f() {
entry:
    %r1 = call ubyte* %malloc(ulong 16)
    %a = cast ubyte* %r1 to %N*
    %r2 = call ubyte* %malloc(ulong 16)
    %b = cast ubyte* %r2 to %N*
    %an = getelementptr %N* %a, long 0, ubyte 1
    store %N* null, %N** %an
    %bn = getelementptr %N* %b, long 0, ubyte 1
    store %N* null, %N** %bn
    ret void
}
)").orDie();
    SteensgaardAnalysis sa(*m);
    Function *f = m->getFunction("f");
    auto it = f->entryBlock()->begin();
    Value *r1 = it->get();
    ++it;
    Value *a = it->get();
    ++it;
    Value *r2 = it->get();
    ++it;
    Value *b = it->get();
    EXPECT_EQ(sa.alias(a, b), AliasResult::NoAlias);
    EXPECT_GE(sa.numClasses(), 2u);
    (void)r1;
    (void)r2;
}

TEST(Steensgaard, LinkedStructuresUnify)
{
    // Storing one pointer into the other's field merges the classes.
    auto m = parseAssembly(R"(
%N = type { long, %N* }
declare ubyte* %malloc(ulong %n)
void %f() {
entry:
    %r1 = call ubyte* %malloc(ulong 16)
    %a = cast ubyte* %r1 to %N*
    %r2 = call ubyte* %malloc(ulong 16)
    %b = cast ubyte* %r2 to %N*
    %an = getelementptr %N* %a, long 0, ubyte 1
    store %N* %b, %N** %an
    %ld = load %N** %an
    store %N* null, %N** %an
    ret void
}
)").orDie();
    SteensgaardAnalysis sa(*m);
    Function *f = m->getFunction("f");
    auto it = f->entryBlock()->begin();
    ++it;
    Value *a = it->get();
    // The load through a's field must alias b's class (MayAlias
    // here means "same class").
    ++it;
    ++it;
    Value *b = it->get();
    auto inst = sa.structureInstance(a);
    // a's structure instance includes its own allocation site.
    EXPECT_FALSE(inst.empty());
    (void)b;
}

TEST(CallGraph, DirectEdges)
{
    auto m = parseAssembly(R"(
int %leaf(int %x) {
entry:
    ret int %x
}
int %mid(int %x) {
entry:
    %r = call int %leaf(int %x)
    ret int %r
}
int %main() {
entry:
    %r = call int %mid(int 1)
    ret int %r
}
)").orDie();
    CallGraph cg(*m);
    Function *leaf = m->getFunction("leaf");
    Function *mid = m->getFunction("mid");
    Function *main = m->getFunction("main");

    ASSERT_EQ(cg.callees(main).size(), 1u);
    EXPECT_EQ(cg.callees(main)[0], mid);
    ASSERT_EQ(cg.callers(leaf).size(), 1u);
    EXPECT_EQ(cg.callers(leaf)[0], mid);
    EXPECT_FALSE(cg.isRecursive(leaf));

    auto order = cg.bottomUpOrder();
    auto pos = [&](const Function *f) {
        return std::find(order.begin(), order.end(), f) -
               order.begin();
    };
    EXPECT_LT(pos(leaf), pos(mid));
    EXPECT_LT(pos(mid), pos(main));
}

TEST(CallGraph, RecursionDetected)
{
    auto m = parseAssembly(R"(
int %even(int %n) {
entry:
    %z = seteq int %n, 0
    br bool %z, label %yes, label %rec
yes:
    ret int 1
rec:
    %n1 = sub int %n, 1
    %r = call int %odd(int %n1)
    ret int %r
}
int %odd(int %n) {
entry:
    %z = seteq int %n, 0
    br bool %z, label %no, label %rec
no:
    ret int 0
rec:
    %n1 = sub int %n, 1
    %r = call int %even(int %n1)
    ret int %r
}
)").orDie();
    CallGraph cg(*m);
    EXPECT_TRUE(cg.isRecursive(m->getFunction("even")));
    EXPECT_TRUE(cg.isRecursive(m->getFunction("odd")));
}

TEST(CallGraph, AddressTakenAndIndirect)
{
    auto m = parseAssembly(R"(
int %cb(int %x) {
entry:
    ret int %x
}
int %other() {
entry:
    ret int 0
}
int %apply(int (int)* %f) {
entry:
    %r = call int %f(int 5)
    ret int %r
}
int %main() {
entry:
    %r = call int %apply(int (int)* %cb)
    ret int %r
}
)").orDie();
    CallGraph cg(*m);
    Function *cb = m->getFunction("cb");
    Function *other = m->getFunction("other");
    Function *apply = m->getFunction("apply");

    ASSERT_EQ(cg.addressTaken().size(), 1u);
    EXPECT_EQ(cg.addressTaken()[0], cb);
    // The indirect call targets the type-compatible address-taken
    // set — cb, not other (wrong type/not address-taken).
    auto callees = cg.callees(apply);
    ASSERT_EQ(callees.size(), 1u);
    EXPECT_EQ(callees[0], cb);
    (void)other;
}
