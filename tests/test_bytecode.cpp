/**
 * @file
 * Virtual object code tests: round-tripping, the header flags of
 * Section 3.2, encoding density (most instructions in one 32-bit
 * word, per Section 3.1), and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "parser/parser.h"
#include "verifier/verifier.h"
#include "workloads/workloads.h"

using namespace llva;

namespace {

const char *kRichModule = R"(
target pointersize = 64
%struct.Node = type { long, %struct.Node* }
%msg = constant [3 x ubyte] c"ok\00"
%tab = global [2 x long] [ long 7, long -9 ]
declare void %putint(long %v)
internal long %walk(%struct.Node* %n) {
entry:
    br label %head
head:
    %cur = phi %struct.Node* [ %n, %entry ], [ %nx, %body ]
    %acc = phi long [ 0, %entry ], [ %acc2, %body ]
    %stop = seteq %struct.Node* %cur, null
    br bool %stop, label %out, label %body
body:
    %vp = getelementptr %struct.Node* %cur, long 0, ubyte 0
    %v = load long* %vp
    %acc2 = add long %acc, %v
    %npp = getelementptr %struct.Node* %cur, long 0, ubyte 1
    %nx = load %struct.Node** %npp
    br label %head
out:
    ret long %acc
}
int %main() {
entry:
    %r = call long %walk(%struct.Node* null)
    call void %putint(long %r)
    %t = cast long %r to int
    ret int %t
}
)";

} // namespace

TEST(Bytecode, RoundTripIsStable)
{
    auto m = parseAssembly(kRichModule, "rich");
    verifyOrDie(*m);
    auto bytes = writeBytecode(*m);
    auto m2 = readBytecode(bytes);
    verifyOrDie(*m2);
    auto bytes2 = writeBytecode(*m2);
    EXPECT_EQ(bytes, bytes2);
}

TEST(Bytecode, HeaderCarriesTargetFlags)
{
    auto m = parseAssembly("target pointersize = 32\n"
                           "target endian = big\n");
    auto bytes = writeBytecode(*m);
    EXPECT_EQ(bytes[0], 'L');
    EXPECT_EQ(bytes[1], 'L');
    EXPECT_EQ(bytes[2], 'V');
    EXPECT_EQ(bytes[3], 'A');
    auto m2 = readBytecode(bytes);
    EXPECT_EQ(m2->pointerSize(), 4u);
    EXPECT_TRUE(m2->targetFlags().bigEndian);
}

TEST(Bytecode, PreservesSemanticsAcrossRoundTrip)
{
    auto m = parseAssembly(kRichModule, "rich");
    auto m2 = readBytecode(writeBytecode(*m));
    // Same structure: functions, globals, instruction counts.
    EXPECT_EQ(m2->functions().size(), m->functions().size());
    EXPECT_EQ(m2->globals().size(), m->globals().size());
    EXPECT_EQ(m2->instructionCount(), m->instructionCount());
    Function *walk = m2->getFunction("walk");
    ASSERT_NE(walk, nullptr);
    EXPECT_EQ(walk->linkage(), Linkage::Internal);
    EXPECT_EQ(walk->size(), 4u);
}

TEST(Bytecode, PreservesExceptionsAttribute)
{
    auto m = parseAssembly(R"(
int %f(int* %p) {
entry:
    %v = load int* %p !ee(false)
    %w = add int %v, 1 !ee(true)
    ret int %w
}
)");
    auto m2 = readBytecode(writeBytecode(*m));
    BasicBlock *bb = m2->getFunction("f")->entryBlock();
    auto it = bb->begin();
    EXPECT_FALSE((*it)->exceptionsEnabled());
    ++it;
    EXPECT_TRUE((*it)->exceptionsEnabled());
}

TEST(Bytecode, MostInstructionsFitOneWord)
{
    // Section 3.1: "most instructions usually fit in a single
    // 32-bit word."
    auto m = buildWorkload("ptrdist-anagram", 1);
    BytecodeStats stats = measureBytecode(*m);
    size_t total =
        stats.instructionWords32 + stats.instructionsExtended;
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(stats.instructionWords32) /
                  static_cast<double>(total),
              0.5);
}

TEST(Bytecode, StatsAccountTotalSize)
{
    auto m = parseAssembly(kRichModule, "rich");
    BytecodeStats stats = measureBytecode(*m);
    auto bytes = writeBytecode(*m);
    EXPECT_EQ(stats.totalBytes, bytes.size());
    EXPECT_GT(stats.typeTableBytes, 0u);
    EXPECT_GT(stats.instructionBytes, 0u);
    EXPECT_LT(stats.instructionBytes, stats.totalBytes);
}

TEST(Bytecode, RejectsBadMagic)
{
    std::vector<uint8_t> junk = {'N', 'O', 'P', 'E', 1, 8, 0, 0};
    EXPECT_THROW(readBytecode(junk), FatalError);
}

TEST(Bytecode, RejectsTruncatedFile)
{
    auto m = parseAssembly(kRichModule, "rich");
    auto bytes = writeBytecode(*m);
    bytes.resize(bytes.size() / 2);
    EXPECT_THROW(readBytecode(bytes), FatalError);
}

TEST(Bytecode, RejectsBadVersion)
{
    auto m = parseAssembly("target pointersize = 64\n");
    auto bytes = writeBytecode(*m);
    bytes[4] = 99;
    EXPECT_THROW(readBytecode(bytes), FatalError);
}

TEST(Bytecode, RecursiveTypesRoundTrip)
{
    auto m = parseAssembly(R"(
%A = type { int, %B* }
%B = type { double, %A* }
%root = global %A* null
)");
    auto m2 = readBytecode(writeBytecode(*m));
    StructType *a = m2->types().namedType("A");
    StructType *bt = m2->types().namedType("B");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(bt, nullptr);
    EXPECT_EQ(cast<PointerType>(a->field(1))->pointee(), bt);
    EXPECT_EQ(cast<PointerType>(bt->field(1))->pointee(), a);
}

TEST(Bytecode, WorkloadSuiteRoundTrips)
{
    for (const auto &info : allWorkloads()) {
        auto m = info.build(1);
        auto bytes = writeBytecode(*m);
        auto m2 = readBytecode(bytes);
        VerifyResult r = verifyModule(*m2);
        EXPECT_TRUE(r.ok()) << info.name << ":\n" << r.str();
        EXPECT_EQ(writeBytecode(*m2), bytes) << info.name;
    }
}

TEST(Bytecode, CompactRelativeToText)
{
    // Binary virtual object code should beat the textual assembly
    // by a wide margin (compactness claim of Section 3.1).
    auto m = buildWorkload("181.mcf", 1);
    auto bytes = writeBytecode(*m);
    std::string text = m->str();
    EXPECT_LT(bytes.size(), text.size() / 2);
}
