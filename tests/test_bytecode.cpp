/**
 * @file
 * Virtual object code tests: round-tripping, the header flags of
 * Section 3.2, encoding density (most instructions in one 32-bit
 * word, per Section 3.1), and malformed-input rejection.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "parser/parser.h"
#include "support/byte_io.h"
#include "support/hashing.h"
#include "verifier/verifier.h"
#include "workloads/workloads.h"

using namespace llva;

namespace {

const char *kRichModule = R"(
target pointersize = 64
%struct.Node = type { long, %struct.Node* }
%msg = constant [3 x ubyte] c"ok\00"
%tab = global [2 x long] [ long 7, long -9 ]
declare void %putint(long %v)
internal long %walk(%struct.Node* %n) {
entry:
    br label %head
head:
    %cur = phi %struct.Node* [ %n, %entry ], [ %nx, %body ]
    %acc = phi long [ 0, %entry ], [ %acc2, %body ]
    %stop = seteq %struct.Node* %cur, null
    br bool %stop, label %out, label %body
body:
    %vp = getelementptr %struct.Node* %cur, long 0, ubyte 0
    %v = load long* %vp
    %acc2 = add long %acc, %v
    %npp = getelementptr %struct.Node* %cur, long 0, ubyte 1
    %nx = load %struct.Node** %npp
    br label %head
out:
    ret long %acc
}
int %main() {
entry:
    %r = call long %walk(%struct.Node* null)
    call void %putint(long %r)
    %t = cast long %r to int
    ret int %t
}
)";

} // namespace

TEST(Bytecode, RoundTripIsStable)
{
    auto m = parseAssembly(kRichModule, "rich").orDie();
    verifyOrDie(*m);
    auto bytes = writeBytecode(*m);
    auto m2 = readBytecode(bytes).orDie();
    verifyOrDie(*m2);
    auto bytes2 = writeBytecode(*m2);
    EXPECT_EQ(bytes, bytes2);
}

TEST(Bytecode, HeaderCarriesTargetFlags)
{
    auto m = parseAssembly("target pointersize = 32\n"
                           "target endian = big\n")
                 .orDie();
    auto bytes = writeBytecode(*m);
    EXPECT_EQ(bytes[0], 'L');
    EXPECT_EQ(bytes[1], 'L');
    EXPECT_EQ(bytes[2], 'V');
    EXPECT_EQ(bytes[3], 'A');
    auto m2 = readBytecode(bytes).orDie();
    EXPECT_EQ(m2->pointerSize(), 4u);
    EXPECT_TRUE(m2->targetFlags().bigEndian);
}

TEST(Bytecode, PreservesSemanticsAcrossRoundTrip)
{
    auto m = parseAssembly(kRichModule, "rich").orDie();
    auto m2 = readBytecode(writeBytecode(*m)).orDie();
    // Same structure: functions, globals, instruction counts.
    EXPECT_EQ(m2->functions().size(), m->functions().size());
    EXPECT_EQ(m2->globals().size(), m->globals().size());
    EXPECT_EQ(m2->instructionCount(), m->instructionCount());
    Function *walk = m2->getFunction("walk");
    ASSERT_NE(walk, nullptr);
    EXPECT_EQ(walk->linkage(), Linkage::Internal);
    EXPECT_EQ(walk->size(), 4u);
}

TEST(Bytecode, PreservesExceptionsAttribute)
{
    auto m = parseAssembly(R"(
int %f(int* %p) {
entry:
    %v = load int* %p !ee(false)
    %w = add int %v, 1 !ee(true)
    ret int %w
}
)").orDie();
    auto m2 = readBytecode(writeBytecode(*m)).orDie();
    BasicBlock *bb = m2->getFunction("f")->entryBlock();
    auto it = bb->begin();
    EXPECT_FALSE((*it)->exceptionsEnabled());
    ++it;
    EXPECT_TRUE((*it)->exceptionsEnabled());
}

TEST(Bytecode, MostInstructionsFitOneWord)
{
    // Section 3.1: "most instructions usually fit in a single
    // 32-bit word."
    auto m = buildWorkload("ptrdist-anagram", 1);
    BytecodeStats stats = measureBytecode(*m);
    size_t total =
        stats.instructionWords32 + stats.instructionsExtended;
    ASSERT_GT(total, 0u);
    EXPECT_GT(static_cast<double>(stats.instructionWords32) /
                  static_cast<double>(total),
              0.5);
}

TEST(Bytecode, StatsAccountTotalSize)
{
    auto m = parseAssembly(kRichModule, "rich").orDie();
    BytecodeStats stats = measureBytecode(*m);
    auto bytes = writeBytecode(*m);
    EXPECT_EQ(stats.totalBytes, bytes.size());
    EXPECT_GT(stats.typeTableBytes, 0u);
    EXPECT_GT(stats.instructionBytes, 0u);
    EXPECT_LT(stats.instructionBytes, stats.totalBytes);
}

namespace {

/** Expect a recoverable error whose message mentions \p what. */
void
expectRejected(const std::vector<uint8_t> &bytes, const char *what)
{
    auto r = readBytecode(bytes);
    ASSERT_FALSE(r.ok()) << "accepted bytes that should mention: "
                         << what;
    EXPECT_NE(r.error().message().find(what), std::string::npos)
        << "error was: " << r.error().message();
}

/** Append a *valid* CRC trailer so the structural checks behind the
 *  checksum are what gets exercised. */
std::vector<uint8_t>
sealed(ByteWriter &w)
{
    w.writeU32(crc32(w.bytes()));
    return w.takeBytes();
}

/** A well-formed header for hand-crafted malformed payloads. */
ByteWriter
craftedHeader()
{
    ByteWriter w;
    for (char c : {'L', 'L', 'V', 'A'})
        w.writeByte(static_cast<uint8_t>(c));
    w.writeByte(kBytecodeVersion);
    w.writeByte(8); // pointer size
    w.writeByte(0); // little-endian
    w.writeByte(0); // reserved
    w.writeString("crafted");
    return w;
}

constexpr uint8_t kKindVoid = 0;
constexpr uint8_t kKindInt = 7;
constexpr uint8_t kKindDouble = 11;
constexpr uint8_t kKindPointer = 13;
constexpr uint8_t kKindFunction = 16;

} // namespace

TEST(Bytecode, RejectsBadMagic)
{
    ByteWriter w;
    for (char c : {'N', 'O', 'P', 'E'})
        w.writeByte(static_cast<uint8_t>(c));
    w.writeByte(kBytecodeVersion);
    w.writeByte(8);
    w.writeByte(0);
    w.writeByte(0);
    expectRejected(sealed(w), "bad magic");
}

TEST(Bytecode, RejectsTruncatedFile)
{
    auto m = parseAssembly(kRichModule, "rich").orDie();
    auto bytes = writeBytecode(*m);
    bytes.resize(bytes.size() / 2);
    auto r = readBytecode(bytes);
    EXPECT_FALSE(r.ok());
}

TEST(Bytecode, RejectsBadVersion)
{
    auto m = parseAssembly("target pointersize = 64\n").orDie();
    auto bytes = writeBytecode(*m);
    // Patch the version byte and re-seal with a correct checksum so
    // the version check itself is exercised.
    bytes.resize(bytes.size() - kBytecodeTrailerSize);
    bytes[4] = 99;
    ByteWriter w;
    w.writeBytes(bytes.data(), bytes.size());
    expectRejected(sealed(w), "version");
}

// --- Bounds-check audit regressions ----------------------------------
// One crafted payload per rejected shape: each is a structurally
// malicious file with a *valid* checksum, proving the parser's own
// defenses hold even when the integrity trailer has been forged.

TEST(Bytecode, RejectsTypeTableCountBeyondStream)
{
    ByteWriter w = craftedHeader();
    w.writeVaruint(1ull << 40); // type records that cannot exist
    expectRejected(sealed(w), "type table count");
}

TEST(Bytecode, RejectsCyclicTypeTable)
{
    ByteWriter w = craftedHeader();
    w.writeVaruint(1);
    w.writeByte(kKindPointer);
    w.writeVaruint(0); // pointer to itself: unresolvable cycle
    expectRejected(sealed(w), "cyclic");
}

TEST(Bytecode, RejectsPointerToVoid)
{
    ByteWriter w = craftedHeader();
    w.writeVaruint(2);
    w.writeByte(kKindVoid);
    w.writeByte(kKindPointer);
    w.writeVaruint(0);
    expectRejected(sealed(w), "pointer to void");
}

TEST(Bytecode, RejectsTypeIndexOutOfRange)
{
    ByteWriter w = craftedHeader();
    w.writeVaruint(1);
    w.writeByte(kKindPointer);
    w.writeVaruint(77); // no such record
    expectRejected(sealed(w), "out of range");
}

TEST(Bytecode, RejectsDuplicateFunctionNames)
{
    ByteWriter w = craftedHeader();
    w.writeVaruint(2); // type table
    w.writeByte(kKindInt);
    w.writeByte(kKindFunction);
    w.writeVaruint(0); // returns int
    w.writeVaruint(0); // no params
    w.writeByte(0);    // not vararg
    w.writeVaruint(0); // no globals
    w.writeVaruint(2); // two functions, same name
    for (int i = 0; i < 2; ++i) {
        w.writeString("f");
        w.writeVaruint(1);
        w.writeByte(0); // external declaration
    }
    expectRejected(sealed(w), "duplicate function");
}

TEST(Bytecode, RejectsBlockCountBeyondStream)
{
    ByteWriter w = craftedHeader();
    w.writeVaruint(2); // type table
    w.writeByte(kKindVoid);
    w.writeByte(kKindFunction);
    w.writeVaruint(0); // returns void
    w.writeVaruint(0);
    w.writeByte(0);
    w.writeVaruint(0); // no globals
    w.writeVaruint(1); // one defined function
    w.writeString("f");
    w.writeVaruint(1);
    w.writeByte(2);              // defined
    w.writeVaruint(1ull << 40);  // blocks that cannot exist
    expectRejected(sealed(w), "block count");
}

TEST(Bytecode, RejectsIntegerConstantWithFPType)
{
    ByteWriter w = craftedHeader();
    w.writeVaruint(3); // type table
    w.writeByte(kKindVoid);
    w.writeByte(kKindDouble);
    w.writeByte(kKindFunction);
    w.writeVaruint(0); // returns void
    w.writeVaruint(0);
    w.writeByte(0);
    w.writeVaruint(0); // no globals
    w.writeVaruint(1); // one defined function
    w.writeString("f");
    w.writeVaruint(2);
    w.writeByte(2);    // defined
    w.writeVaruint(0); // no blocks
    w.writeVaruint(1); // one pool constant
    w.writeByte(0);    // kConstInt tag...
    w.writeVaruint(1); // ...typed double
    w.writeVarint(5);
    expectRejected(sealed(w), "integer constant");
}

TEST(Bytecode, RejectsTrailingGarbage)
{
    auto m = parseAssembly("target pointersize = 64\n").orDie();
    auto bytes = writeBytecode(*m);
    bytes.resize(bytes.size() - kBytecodeTrailerSize);
    ByteWriter w;
    w.writeBytes(bytes.data(), bytes.size());
    w.writeByte(0xcc); // junk after the module payload
    expectRejected(sealed(w), "trailing");
}

// --- Corruption fuzzer -----------------------------------------------
// Paper Section 3.1 makes virtual object code the sole persistent
// program representation, so every load crosses a trust boundary.
// Exhaustively damage a real multi-function module: no shape may
// crash, throw, or yield a module.

TEST(Bytecode, EverySingleByteCorruptionIsRejected)
{
    auto m = parseAssembly(kRichModule, "rich").orDie();
    auto bytes = writeBytecode(*m);
    ASSERT_GT(bytes.size(), 100u);
    for (size_t i = 0; i < bytes.size(); ++i) {
        for (uint8_t delta : {uint8_t(0x01), uint8_t(0xff)}) {
            std::vector<uint8_t> bad = bytes;
            bad[i] ^= delta;
            auto r = readBytecode(bad);
            EXPECT_FALSE(r.ok())
                << "byte " << i << " xor " << int(delta)
                << " was accepted";
        }
    }
}

TEST(Bytecode, EveryTruncationIsRejected)
{
    auto m = parseAssembly(kRichModule, "rich").orDie();
    auto bytes = writeBytecode(*m);
    for (size_t len = 0; len < bytes.size(); ++len) {
        std::vector<uint8_t> bad(bytes.begin(), bytes.begin() + len);
        auto r = readBytecode(bad);
        EXPECT_FALSE(r.ok()) << "truncation to " << len
                             << " bytes was accepted";
    }
}

TEST(Bytecode, RecursiveTypesRoundTrip)
{
    auto m = parseAssembly(R"(
%A = type { int, %B* }
%B = type { double, %A* }
%root = global %A* null
)").orDie();
    auto m2 = readBytecode(writeBytecode(*m)).orDie();
    StructType *a = m2->types().namedType("A");
    StructType *bt = m2->types().namedType("B");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(bt, nullptr);
    EXPECT_EQ(cast<PointerType>(a->field(1))->pointee(), bt);
    EXPECT_EQ(cast<PointerType>(bt->field(1))->pointee(), a);
}

TEST(Bytecode, WorkloadSuiteRoundTrips)
{
    for (const auto &info : allWorkloads()) {
        auto m = info.build(1);
        auto bytes = writeBytecode(*m);
        auto m2 = readBytecode(bytes).orDie();
        VerifyResult r = verifyModule(*m2);
        EXPECT_TRUE(r.ok()) << info.name << ":\n" << r.str();
        EXPECT_EQ(writeBytecode(*m2), bytes) << info.name;
    }
}

TEST(Bytecode, CompactRelativeToText)
{
    // Binary virtual object code should beat the textual assembly
    // by a wide margin (compactness claim of Section 3.1).
    auto m = buildWorkload("181.mcf", 1);
    auto bytes = writeBytecode(*m);
    std::string text = m->str();
    EXPECT_LT(bytes.size(), text.size() / 2);
}
