/**
 * @file
 * VM checkpoint/restore tests: a running program's heap, globals,
 * captured output, OS state (SMC redirects), code-cache index, and
 * runtime profile must round-trip through a sealed checkpoint into a
 * fresh context — including onto a *different* target ISA, where
 * native entries classify as Incompatible and heal by on-demand
 * retranslation while the carried profile re-promotes immediately.
 * Suspended activations round-trip same-target (and are rejected
 * cross-target), and damaged or mismatched blobs never restore.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "llee/checkpoint.h"
#include "parser/parser.h"
#include "support/hashing.h"
#include "trace/profile.h"
#include "verifier/verifier.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

// Two-phase program: init() mallocs an array, fills it with running
// sums, stashes the pointer in a global, and prints; finish() walks
// the array through the global and prints again. Only a checkpoint
// that faithfully reproduces the heap, the global, and the captured
// output can run finish() correctly in a fresh context.
const char *kPhases = R"(
%cells = global long* null

declare ubyte* %malloc(ulong %n)
declare void %putint(long %v)

long %init(long %n) {
entry:
    %raw = call ubyte* %malloc(ulong 800)
    %p = cast ubyte* %raw to long*
    store long* %p, long** %cells
    br label %head
head:
    %i = phi long [ 0, %entry ], [ %i2, %head ]
    %acc = phi long [ 0, %entry ], [ %acc2, %head ]
    %acc2 = add long %acc, %i
    %slot = getelementptr long* %p, long %i
    store long %acc2, long* %slot
    %i2 = add long %i, 1
    %more = setlt long %i2, %n
    br bool %more, label %head, label %out
out:
    call void %putint(long %acc2)
    ret long %acc2
}

long %finish(long %n) {
entry:
    %p = load long** %cells
    br label %head
head:
    %i = phi long [ 0, %entry ], [ %i2, %head ]
    %acc = phi long [ 0, %entry ], [ %acc2, %head ]
    %slot = getelementptr long* %p, long %i
    %v = load long* %slot
    %acc2 = add long %acc, %v
    %i2 = add long %i, 1
    %more = setlt long %i2, %n
    br bool %more, label %head, label %out
out:
    call void %putint(long %acc2)
    ret long %acc2
}
)";

// sum(0..99) and sum of its running sums.
constexpr int64_t kInitSum = 4950;
constexpr int64_t kFinishSum = 166650;

// The hot-call module from the dispatch tests: work() crosses a
// 500-sample watermark during main() and gets trace-tier promoted.
const char *kHotCalls = R"(
internal int %work(int %n) {
entry:
    br label %head
head:
    %i = phi int [ 0, %entry ], [ %i2, %head ]
    %acc = phi int [ 0, %entry ], [ %acc2, %head ]
    %acc2 = add int %acc, %i
    %i2 = add int %i, 1
    %more = setlt int %i2, %n
    br bool %more, label %head, label %out
out:
    ret int %acc2
}
int %main() {
entry:
    br label %loop
loop:
    %j = phi int [ 0, %entry ], [ %j2, %loop ]
    %acc = phi int [ 0, %entry ], [ %acc2, %loop ]
    %w = call int %work(int 100)
    %acc2 = add int %acc, %w
    %j2 = add int %j, 1
    %more = setlt int %j2, 40
    br bool %more, label %loop, label %out
out:
    ret int %acc2
}
)";

CodeGenOptions
adaptiveOpts(uint64_t watermark = 500)
{
    CodeGenOptions opts;
    opts.optLevel = 2;
    opts.adaptive = true;
    opts.promoteWatermark = watermark;
    return opts;
}

uint64_t
hashOf(const Module &m)
{
    return fnv1a(writeBytecode(m));
}

} // namespace

TEST(Checkpoint, RoundTripCarriesHeapGlobalsAndOutput)
{
    auto m = parseAssembly(kPhases).orDie();
    verifyOrDie(*m);
    uint64_t hash = hashOf(*m);

    ExecutionContext ctx1(*m);
    CodeManager cm1(*getTarget("x86"));
    MachineSimulator sim1(ctx1, cm1);
    auto r1 = sim1.run(m->getFunction("init"), {RtValue::ofInt(100)});
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(static_cast<int64_t>(r1.value.i), kInitSum);
    EXPECT_EQ(ctx1.output(), std::to_string(kInitSum));

    auto blob = captureCheckpoint(hash, ctx1, cm1, nullptr);

    ExecutionContext ctx2(*m);
    CodeManager cm2(*getTarget("x86"));
    auto st = restoreCheckpoint(blob, hash, ctx2, cm2, nullptr);
    ASSERT_TRUE(st.ok()) << st.error().message();
    // init()'s translation travels same-target; nothing is dropped.
    EXPECT_EQ(st->codeRestored, 1u);
    EXPECT_EQ(st->codeIncompatible, 0u);
    EXPECT_EQ(st->codeRejected, 0u);
    EXPECT_FALSE(st->suspended);
    EXPECT_TRUE(cm2.has(m->getFunction("init")));
    EXPECT_EQ(cm2.functionsTranslated(), 0u);

    // finish() reads the heap through the restored global pointer
    // and appends to the restored output.
    MachineSimulator sim2(ctx2, cm2);
    auto r2 = sim2.run(m->getFunction("finish"), {RtValue::ofInt(100)});
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(static_cast<int64_t>(r2.value.i), kFinishSum);
    EXPECT_EQ(ctx2.output(), std::to_string(kInitSum) +
                                 std::to_string(kFinishSum));
}

TEST(Checkpoint, CrossTargetRestoreHealsByRetranslation)
{
    auto m = parseAssembly(kPhases).orDie();
    verifyOrDie(*m);
    uint64_t hash = hashOf(*m);

    ExecutionContext ctx1(*m);
    CodeManager cm1(*getTarget("x86"));
    MachineSimulator sim1(ctx1, cm1);
    ASSERT_TRUE(
        sim1.run(m->getFunction("init"), {RtValue::ofInt(100)}).ok());
    auto blob = captureCheckpoint(hash, ctx1, cm1, nullptr);

    // Restore onto a different target ISA: the x86 body of init()
    // classifies as Incompatible and is dropped; program state is
    // target-independent and restores in full.
    ExecutionContext ctx2(*m);
    CodeManager cm2(*getTarget("riscv"));
    auto st = restoreCheckpoint(blob, hash, ctx2, cm2, nullptr);
    ASSERT_TRUE(st.ok()) << st.error().message();
    EXPECT_EQ(st->codeIncompatible, 1u);
    EXPECT_EQ(st->codeRestored, 0u);
    EXPECT_FALSE(cm2.has(m->getFunction("init")));

    // The migrated program continues on the new ISA: finish() is
    // retranslated on demand (healing) and computes the same answer
    // from the restored heap.
    MachineSimulator sim2(ctx2, cm2);
    auto r2 = sim2.run(m->getFunction("finish"), {RtValue::ofInt(100)});
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(static_cast<int64_t>(r2.value.i), kFinishSum);
    EXPECT_EQ(ctx2.output(), std::to_string(kInitSum) +
                                 std::to_string(kFinishSum));
    EXPECT_GE(cm2.functionsTranslated(), 1u);
}

TEST(Checkpoint, CarriedProfileRepromotesImmediately)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    uint64_t hash = hashOf(*m);
    const Function *work = m->getFunction("work");

    // Heat up work() on x86 until it is trace-tier promoted.
    ExecutionContext ctx1(*m);
    CodeManager cm1(*getTarget("x86"), adaptiveOpts());
    EdgeProfile profile1;
    cm1.setAdaptive(&profile1, 500);
    MachineSimulator sim1(ctx1, cm1);
    sim1.setProfile(&profile1);
    auto r1 = sim1.run(m->getFunction("main"));
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(static_cast<int64_t>(r1.value.i), 198000);
    ASSERT_GE(cm1.promotions(), 1u);

    auto blob = captureCheckpoint(hash, ctx1, cm1, &profile1);

    // Migrate to riscv: the trace-tier body is Incompatible, but the
    // carried profile keeps its heat — a single call to work() (far
    // below the watermark on its own) re-promotes immediately.
    ExecutionContext ctx2(*m);
    CodeManager cm2(*getTarget("riscv"), adaptiveOpts());
    EdgeProfile profile2;
    cm2.setAdaptive(&profile2, 500);
    auto st = restoreCheckpoint(blob, hash, ctx2, cm2, &profile2);
    ASSERT_TRUE(st.ok()) << st.error().message();
    EXPECT_TRUE(st->profileRestored);
    EXPECT_GE(st->codeIncompatible, 1u);

    MachineSimulator sim2(ctx2, cm2);
    sim2.setProfile(&profile2);
    auto r2 = sim2.run(work, {RtValue::ofInt(100)});
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(static_cast<int64_t>(r2.value.i), 4950);
    EXPECT_EQ(cm2.promotions(), 1u);
    EXPECT_EQ(cm2.tierOf(work), kTierTrace);

    // Control: without the carried profile, the same single call
    // stays below the watermark and nothing is promoted.
    ExecutionContext ctx3(*m);
    CodeManager cm3(*getTarget("riscv"), adaptiveOpts());
    EdgeProfile profile3;
    cm3.setAdaptive(&profile3, 500);
    MachineSimulator sim3(ctx3, cm3);
    sim3.setProfile(&profile3);
    ASSERT_TRUE(sim3.run(work, {RtValue::ofInt(100)}).ok());
    EXPECT_EQ(cm3.promotions(), 0u);
}

TEST(Checkpoint, InterpreterPinTravelsSameTargetOnly)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    uint64_t hash = hashOf(*m);
    const Function *work = m->getFunction("work");

    // Pin work() to the interpreter by failing every codegen tier.
    ExecutionContext ctx1(*m);
    CodeManager cm1(*getTarget("x86"), adaptiveOpts());
    TranslationHooks hooks;
    hooks.beforeCodegen = [](const Function &f, unsigned) {
        if (f.name() == "work")
            throw std::runtime_error("injected codegen fault");
    };
    cm1.setHooks(hooks);
    ASSERT_EQ(cm1.get(work), nullptr);
    ASSERT_TRUE(cm1.isInterpreted(work));

    auto blob = captureCheckpoint(hash, ctx1, cm1, nullptr);

    // Same target: the pin travels (don't walk the failing ladder
    // again) ...
    ExecutionContext ctx2(*m);
    CodeManager cm2(*getTarget("x86"), adaptiveOpts());
    auto st2 = restoreCheckpoint(blob, hash, ctx2, cm2, nullptr);
    ASSERT_TRUE(st2.ok()) << st2.error().message();
    EXPECT_EQ(st2->codeRestored, 1u);
    EXPECT_TRUE(cm2.isInterpreted(work));

    // ... but a ladder that failed on one ISA says nothing about
    // another: cross-target, the pin is dropped with the rest.
    ExecutionContext ctx3(*m);
    CodeManager cm3(*getTarget("riscv"), adaptiveOpts());
    auto st3 = restoreCheckpoint(blob, hash, ctx3, cm3, nullptr);
    ASSERT_TRUE(st3.ok()) << st3.error().message();
    EXPECT_EQ(st3->codeIncompatible, 1u);
    EXPECT_FALSE(cm3.isInterpreted(work));
}

TEST(Checkpoint, DamagedOrMismatchedBlobsAreRejected)
{
    auto m = parseAssembly(kPhases).orDie();
    verifyOrDie(*m);
    uint64_t hash = hashOf(*m);

    ExecutionContext ctx1(*m);
    CodeManager cm1(*getTarget("x86"));
    MachineSimulator sim1(ctx1, cm1);
    ASSERT_TRUE(
        sim1.run(m->getFunction("init"), {RtValue::ofInt(100)}).ok());
    auto blob = captureCheckpoint(hash, ctx1, cm1, nullptr);

    ExecutionContext ctx2(*m);
    CodeManager cm2(*getTarget("x86"));

    // Wrong virtual object code.
    EXPECT_FALSE(
        restoreCheckpoint(blob, hash + 1, ctx2, cm2, nullptr).ok());

    // A flipped byte anywhere fails the envelope CRC.
    auto flipped = blob;
    flipped[flipped.size() / 2] ^= 0xff;
    auto st = restoreCheckpoint(flipped, hash, ctx2, cm2, nullptr);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().message().find("corrupt"), std::string::npos);

    // Truncation and garbage likewise.
    auto truncated = blob;
    truncated.resize(truncated.size() - 5);
    EXPECT_FALSE(
        restoreCheckpoint(truncated, hash, ctx2, cm2, nullptr).ok());
    EXPECT_FALSE(restoreCheckpoint({}, hash, ctx2, cm2, nullptr).ok());
}

TEST(Checkpoint, SuspendedActivationRoundTrips)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    uint64_t hash = hashOf(*m);

    // Uninterrupted baseline.
    ExecutionContext ctxB(*m);
    CodeManager cmB(*getTarget("x86"));
    MachineSimulator simB(ctxB, cmB);
    auto rB = simB.run(m->getFunction("main"));
    ASSERT_TRUE(rB.ok());
    ASSERT_GT(simB.instructionsExecuted(), 3000u);

    // Pause mid-run — almost certainly inside work() with main()'s
    // frame on the stack, so the suspended section carries frames.
    ExecutionContext ctx1(*m);
    CodeManager cm1(*getTarget("x86"));
    MachineSimulator sim1(ctx1, cm1);
    sim1.setPauseAt(1500);
    auto r1 = sim1.run(m->getFunction("main"));
    EXPECT_TRUE(r1.paused);
    ASSERT_TRUE(sim1.paused());

    auto blob = captureCheckpoint(hash, ctx1, cm1, nullptr, &sim1);

    // Restore into a fresh process image and resume to completion.
    ExecutionContext ctx2(*m);
    CodeManager cm2(*getTarget("x86"));
    MachineSimulator sim2(ctx2, cm2);
    auto st = restoreCheckpoint(blob, hash, ctx2, cm2, nullptr, &sim2);
    ASSERT_TRUE(st.ok()) << st.error().message();
    EXPECT_TRUE(st->suspended);
    ASSERT_TRUE(sim2.paused());
    auto r2 = sim2.resume();
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r2.value.i, rB.value.i);
    EXPECT_EQ(ctx2.output(), ctxB.output());
    EXPECT_FALSE(sim2.paused());

    // The original can also resume in-process, identically.
    auto r1b = sim1.resume();
    ASSERT_TRUE(r1b.ok());
    EXPECT_EQ(r1b.value.i, rB.value.i);
    EXPECT_EQ(sim1.instructionsExecuted(), simB.instructionsExecuted());
}

TEST(Checkpoint, SuspendedCrossTargetRestoreIsRejected)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    uint64_t hash = hashOf(*m);

    ExecutionContext ctx1(*m);
    CodeManager cm1(*getTarget("x86"));
    MachineSimulator sim1(ctx1, cm1);
    sim1.setPauseAt(1500);
    sim1.run(m->getFunction("main"));
    ASSERT_TRUE(sim1.paused());
    auto blob = captureCheckpoint(hash, ctx1, cm1, nullptr, &sim1);

    // A suspended activation is I-ISA state: migrating it to
    // another target must fail loudly, not restore garbage.
    ExecutionContext ctx2(*m);
    CodeManager cm2(*getTarget("riscv"));
    MachineSimulator sim2(ctx2, cm2);
    auto st = restoreCheckpoint(blob, hash, ctx2, cm2, nullptr, &sim2);
    ASSERT_FALSE(st.ok());
    EXPECT_NE(st.error().message().find("quiescent"),
              std::string::npos);
    EXPECT_FALSE(sim2.paused());
}

TEST(Checkpoint, SmcReplaceThenCheckpointThenRestore)
{
    // The live-update sequence from the issue: replace a function
    // via llva.smc.replace.function, checkpoint, restore — the
    // redirect must survive into the restored image.
    auto m = parseAssembly(R"(
declare void %llva.smc.replace.function(ubyte* %t, ubyte* %r)
internal long %work(long %n) {
entry:
    ret long 1
}
internal long %work2(long %n) {
entry:
    ret long 7
}
long %doswap() {
entry:
    %t = cast long (long)* %work to ubyte*
    %r = cast long (long)* %work2 to ubyte*
    call void %llva.smc.replace.function(ubyte* %t, ubyte* %r)
    %v = call long %work(long 0)
    ret long %v
}
long %callwork() {
entry:
    %v = call long %work(long 0)
    ret long %v
}
)").orDie();
    verifyOrDie(*m);
    uint64_t hash = hashOf(*m);

    ExecutionContext ctx1(*m);
    CodeManager cm1(*getTarget("x86"));
    MachineSimulator sim1(ctx1, cm1);
    auto r1 = sim1.run(m->getFunction("doswap"));
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(static_cast<int64_t>(r1.value.i), 7);

    auto blob = captureCheckpoint(hash, ctx1, cm1, nullptr);

    ExecutionContext ctx2(*m);
    CodeManager cm2(*getTarget("x86"));
    auto st = restoreCheckpoint(blob, hash, ctx2, cm2, nullptr);
    ASSERT_TRUE(st.ok()) << st.error().message();
    MachineSimulator sim2(ctx2, cm2);
    auto r2 = sim2.run(m->getFunction("callwork"));
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(static_cast<int64_t>(r2.value.i), 7);

    // Control: without the restored OS state the original binding
    // is still in effect.
    ExecutionContext ctx3(*m);
    CodeManager cm3(*getTarget("x86"));
    MachineSimulator sim3(ctx3, cm3);
    auto r3 = sim3.run(m->getFunction("callwork"));
    ASSERT_TRUE(r3.ok());
    EXPECT_EQ(static_cast<int64_t>(r3.value.i), 1);
}
