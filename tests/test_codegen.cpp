/**
 * @file
 * Code-generation tests: instruction selection shape, phi
 * elimination, both register allocators (output uses only physical
 * registers), frame layout, encoding properties (fixed 4-byte sparc
 * words vs variable x86), and fallthrough elision.
 */

#include <gtest/gtest.h>

#include "codegen/codegen.h"
#include "parser/parser.h"
#include "verifier/verifier.h"

using namespace llva;

namespace {

std::unique_ptr<Module>
parse(const std::string &src)
{
    auto m = parseAssembly(src).orDie();
    verifyOrDie(*m);
    return m;
}

const char *kLoopFn = R"(
int %sum(int %n) {
entry:
    br label %cond
cond:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %acc = phi int [ 0, %entry ], [ %a2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %a2 = add int %acc, %i
    %i2 = add int %i, 1
    br label %cond
exit:
    ret int %acc
}
)";

bool
allRegistersPhysical(const MachineFunction &mf)
{
    for (const auto &mbb : mf.blocks())
        for (const auto &mi : mbb->instrs())
            for (const MOperand &op : mi->ops)
                if (op.kind == MOperand::Reg &&
                    isVirtualReg(op.reg))
                    return false;
    return true;
}

size_t
countOpcode(const MachineFunction &mf, uint16_t op)
{
    size_t n = 0;
    for (const auto &mbb : mf.blocks())
        for (const auto &mi : mbb->instrs())
            if (mi->opcode == op)
                ++n;
    return n;
}

} // namespace

class CodegenTargets : public ::testing::TestWithParam<std::string>
{
  protected:
    Target &target() { return *getTarget(GetParam()); }
};

TEST_P(CodegenTargets, TranslationUsesOnlyPhysicalRegisters)
{
    auto m = parse(kLoopFn);
    for (auto alloc : {CodeGenOptions::Allocator::Local,
                       CodeGenOptions::Allocator::LinearScan}) {
        CodeGenOptions opts;
        opts.allocator = alloc;
        auto mf = translateFunction(*m->getFunction("sum"),
                                    target(), opts);
        EXPECT_TRUE(allRegistersPhysical(*mf));
        EXPECT_EQ(countOpcode(*mf, kOpPhi), 0u);
    }
}

TEST_P(CodegenTargets, NoFrameOperandsRemain)
{
    auto m = parse(kLoopFn);
    auto mf = translateFunction(*m->getFunction("sum"), target());
    for (const auto &mbb : mf->blocks())
        for (const auto &mi : mbb->instrs())
            for (const MOperand &op : mi->ops)
                EXPECT_NE(op.kind, MOperand::Frame);
}

TEST_P(CodegenTargets, ExpansionRatioInPaperRange)
{
    auto m = parse(kLoopFn);
    Function *f = m->getFunction("sum");
    CodeGenOptions opts;
    opts.allocator = GetParam() == "x86"
                         ? CodeGenOptions::Allocator::Local
                         : CodeGenOptions::Allocator::LinearScan;
    auto mf = translateFunction(*f, target(), opts);
    double ratio = static_cast<double>(mf->instructionCount()) /
                   static_cast<double>(f->instructionCount());
    // Table 2 reports roughly 2.2-3.3 (x86) and 2.3-4.2 (sparc);
    // allow slack for the tiny function.
    EXPECT_GT(ratio, 1.2) << GetParam();
    EXPECT_LT(ratio, 6.0) << GetParam();
}

TEST_P(CodegenTargets, EncodeProducesBytes)
{
    auto m = parse(kLoopFn);
    auto mf = translateFunction(*m->getFunction("sum"), target());
    auto bytes = encodeFunction(*mf, target());
    EXPECT_GT(bytes.size(), mf->instructionCount()); // >1 B/inst
}

TEST_P(CodegenTargets, LocalAllocatorSpillsMoreThanLinearScan)
{
    auto m = parse(kLoopFn);
    Function *f = m->getFunction("sum");
    CodeGenStats local, lscan;
    CodeGenOptions lo;
    lo.allocator = CodeGenOptions::Allocator::Local;
    translateFunction(*f, target(), lo, &local);
    CodeGenOptions ls;
    ls.allocator = CodeGenOptions::Allocator::LinearScan;
    translateFunction(*f, target(), ls, &lscan);
    EXPECT_GE(local.spillsInserted + local.reloadsInserted,
              lscan.spillsInserted + lscan.reloadsInserted);
}

TEST_P(CodegenTargets, CoalescingRemovesPhiCopies)
{
    auto m = parse(kLoopFn);
    Function *f = m->getFunction("sum");
    CodeGenStats with, without;
    CodeGenOptions cw;
    cw.coalesce = true;
    translateFunction(*f, target(), cw, &with);
    CodeGenOptions cwo;
    cwo.coalesce = false;
    translateFunction(*f, target(), cwo, &without);
    EXPECT_GT(with.phiCopiesInserted, 0u);
    EXPECT_GE(with.phiCopiesCoalesced, without.phiCopiesCoalesced);
}

INSTANTIATE_TEST_SUITE_P(AllTargets, CodegenTargets,
                         ::testing::ValuesIn(targetNames()),
                         [](const auto &info) {
                             return info.param;
                         });

TEST(Codegen, SparcEncodingIsFixedWidth)
{
    auto m = parse(kLoopFn);
    Target &sparc = *getTarget("sparc");
    auto mf = translateFunction(*m->getFunction("sum"), sparc);
    for (const auto &mbb : mf->blocks())
        for (const auto &mi : mbb->instrs()) {
            auto bytes = sparc.encode(*mi);
            EXPECT_EQ(bytes.size() % 4, 0u)
                << sparc.instrToString(*mi);
        }
}

TEST(Codegen, X86EncodingIsVariableWidth)
{
    auto m = parse(kLoopFn);
    Target &x86 = *getTarget("x86");
    auto mf = translateFunction(*m->getFunction("sum"), x86);
    std::set<size_t> sizes;
    for (const auto &mbb : mf->blocks())
        for (const auto &mi : mbb->instrs())
            sizes.insert(x86.encode(*mi).size());
    EXPECT_GT(sizes.size(), 1u);
}

TEST(Codegen, SparcLargeImmediatesNeedSethiOr)
{
    // The RISC fixed-width property the paper's sparc ratios come
    // from: a large immediate costs extra instructions (sethi/or)
    // on sparc but zero extra instructions on x86 (imm32 field).
    auto src = [](const char *imm) {
        return std::string(R"(
long %f(long %v) {
entry:
    %b = add long %v, )") +
               imm + "\n    ret long %b\n}\n";
    };
    auto smallM = parse(src("7"));
    auto bigM = parse(src("123456789"));
    Function *fs = smallM->getFunction("f");
    Function *fb = bigM->getFunction("f");

    auto sparcSmall = translateFunction(*fs, *getTarget("sparc"));
    auto sparcBig = translateFunction(*fb, *getTarget("sparc"));
    EXPECT_GT(sparcBig->instructionCount(),
              sparcSmall->instructionCount());

    auto x86Small = translateFunction(*fs, *getTarget("x86"));
    auto x86Big = translateFunction(*fb, *getTarget("x86"));
    EXPECT_EQ(x86Big->instructionCount(),
              x86Small->instructionCount());
}

TEST(Codegen, FrameHoldsAllocasAndSpills)
{
    auto m = parse(R"(
int %f(int %x) {
entry:
    %slot = alloca int
    %arr = alloca [10 x long]
    store int %x, int* %slot
    %v = load int* %slot
    ret int %v
}
)");
    auto mf = translateFunction(*m->getFunction("f"),
                                *getTarget("sparc"));
    // At least 4 (int) + 80 (array) bytes of frame.
    EXPECT_GE(mf->frameSize(), 84u);
    // 16-byte aligned.
    EXPECT_EQ(mf->frameSize() % 16, 0u);
}

TEST(Codegen, FallthroughJumpsElided)
{
    auto m = parse(kLoopFn);
    auto mf = translateFunction(*m->getFunction("sum"),
                                *getTarget("sparc"));
    // Count unconditional branches to the lexically next block:
    // there must be none after elision.
    auto &blocks = mf->blocks();
    for (size_t i = 0; i + 1 < blocks.size(); ++i) {
        if (blocks[i]->instrs().empty())
            continue;
        const MachineInstr &last = *blocks[i]->instrs().back();
        if (last.ops.size() == 1 &&
            last.ops[0].kind == MOperand::Block)
            EXPECT_NE(last.ops[0].block, blocks[i + 1].get());
    }
}

TEST(Codegen, CalleeSavedRegistersGetPrologueSaves)
{
    // A function with many values live across a call forces
    // callee-saved register use under linear scan.
    auto m = parse(R"(
declare void %ext()
long %f(long %a, long %b, long %c) {
entry:
    %x = add long %a, %b
    %y = add long %b, %c
    %z = add long %a, %c
    call void %ext()
    %s1 = add long %x, %y
    %s2 = add long %s1, %z
    ret long %s2
}
)");
    Target &sparc = *getTarget("sparc");
    auto mf = translateFunction(*m->getFunction("f"), sparc);
    auto saved = usedCalleeSaved(*mf, sparc);
    EXPECT_FALSE(saved.empty());
}

TEST(Codegen, PhiEliminationInsertsCopiesInPreds)
{
    auto m = parse(kLoopFn);
    CodeGenStats stats;
    translateFunction(*m->getFunction("sum"), *getTarget("sparc"),
                      {}, &stats);
    // Two phis, two predecessors each: 2*(2+1) = 6 copies inserted.
    EXPECT_EQ(stats.phiCopiesInserted, 6u);
}

TEST(Codegen, MachineCodePrints)
{
    auto m = parse(kLoopFn);
    Target &x86 = *getTarget("x86");
    auto mf = translateFunction(*m->getFunction("sum"), x86);
    std::string text = machineFunctionToString(*mf, x86);
    EXPECT_NE(text.find("sum"), std::string::npos);
    EXPECT_NE(text.find("cmp"), std::string::npos);
    EXPECT_NE(text.find("ret"), std::string::npos);
}
