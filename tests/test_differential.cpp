/**
 * @file
 * Differential execution harness over the translation tiers: every
 * workload runs through the interpreter (the semantic oracle) and
 * then under LLEE at each optimization tier on each target backend.
 * All observable behaviour — the checksum value and every byte of
 * captured output — must be identical in every configuration. This
 * is the safety net under the tier-degradation ladder: whichever
 * rung a function lands on, the program means the same thing.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "bytecode/bytecode.h"
#include "codegen/target.h"
#include "llee/llee.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"
#include "workloads/workloads.h"

using namespace llva;

namespace {

struct Observed
{
    uint64_t value;
    std::string output;
};

Observed
oracle(Module &m)
{
    ExecutionContext ctx(m);
    Interpreter interp(ctx);
    interp.setInstructionLimit(200000000);
    auto r = interp.run(m.getFunction("main"));
    EXPECT_TRUE(r.ok()) << trapKindName(r.trap);
    return {r.value.i, ctx.output()};
}

} // namespace

class DifferentialSuite
    : public ::testing::TestWithParam<std::string>
{};

TEST(DifferentialOracle, CoversEveryRegisteredTarget)
{
    // The tier sweeps below iterate targetNames() directly, so a
    // registered backend cannot dodge oracle coverage; this guard
    // pins the expected registry contents so a target silently
    // dropped from the registry (and with it from the oracle) fails
    // loudly instead of shrinking the matrix.
    auto names = targetNames();
    for (const char *expect : {"x86", "sparc", "riscv"})
        EXPECT_NE(std::find(names.begin(), names.end(), expect),
                  names.end())
            << expect;
}

TEST_P(DifferentialSuite, AllTiersMatchTheInterpreter)
{
    auto m = buildWorkload(GetParam(), 1);
    verifyOrDie(*m);
    Observed ref = oracle(*m);
    auto bytecode = writeBytecode(*m);

    for (const std::string &target : targetNames()) {
        for (uint8_t level : {0, 1, 2}) {
            CodeGenOptions opts;
            opts.optLevel = level;
            LLEE llee(*getTarget(target), nullptr, opts);
            LLEEResult r = llee.execute(bytecode);
            ASSERT_TRUE(r.exec.ok())
                << target << " -O" << int(level) << " trap="
                << trapKindName(r.exec.trap);
            EXPECT_EQ(r.exec.value.i, ref.value)
                << target << " -O" << int(level);
            EXPECT_EQ(r.output, ref.output)
                << target << " -O" << int(level);
            EXPECT_EQ(r.tierDowngrades, 0u)
                << target << " -O" << int(level);
        }
    }
}

TEST_P(DifferentialSuite, TraceTierMatchesTheInterpreter)
{
    // The adaptive top rung (-O2+traces): profile at runtime with a
    // low watermark so hot functions are promoted and re-laid-out
    // mid-run, on both targets. Whatever gets promoted, every
    // observable byte must still match the interpreter oracle.
    auto m = buildWorkload(GetParam(), 1);
    verifyOrDie(*m);
    Observed ref = oracle(*m);
    auto bytecode = writeBytecode(*m);

    for (const std::string &target : targetNames()) {
        CodeGenOptions opts;
        opts.optLevel = 2;
        opts.adaptive = true;
        opts.promoteWatermark = 200;
        LLEE llee(*getTarget(target), nullptr, opts);
        LLEEResult r = llee.execute(bytecode);
        ASSERT_TRUE(r.exec.ok())
            << target << " -O2+traces trap="
            << trapKindName(r.exec.trap);
        EXPECT_EQ(r.exec.value.i, ref.value) << target << " -O2+traces";
        EXPECT_EQ(r.output, ref.output) << target << " -O2+traces";
        EXPECT_EQ(r.tierDowngrades, 0u) << target << " -O2+traces";
        EXPECT_EQ(r.promotionFailures, 0u) << target << " -O2+traces";
    }
}

static std::vector<std::string>
names()
{
    std::vector<std::string> n;
    for (const auto &w : allWorkloads())
        n.push_back(w.name);
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DifferentialSuite, ::testing::ValuesIn(names()),
    [](const auto &info) {
        std::string s = info.param;
        for (char &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });
