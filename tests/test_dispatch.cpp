/**
 * @file
 * Threaded dispatch and superblock chaining tests: the direct-
 * threaded engine (with chained trace-tier superblocks) must be
 * observably identical to the legacy switch engine on every
 * workload, chains must link lazily and unlink on invalidate()/SMC
 * retirement, sampled profiling must estimate exact counts, and the
 * two bugfixes that rode along — trap-handler outcomes and exact
 * instruction budgets — get regression coverage.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "llee/envelope.h"
#include "llee/llee.h"
#include "parser/parser.h"
#include "support/statistic.h"
#include "trace/profile.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"
#include "workloads/workloads.h"

using namespace llva;

namespace {

// A helper with a hot inner loop, called repeatedly so that the
// *promoted* body actually gets re-entered (a function promoted
// mid-activation keeps its old body until the next call — only the
// live trace-tier body chains).
const char *kHotCalls = R"(
declare void %llva.smc.replace.function(ubyte* %t, ubyte* %r)
internal int %work(int %n) {
entry:
    br label %head
head:
    %i = phi int [ 0, %entry ], [ %i2, %head ]
    %acc = phi int [ 0, %entry ], [ %acc2, %head ]
    %acc2 = add int %acc, %i
    %i2 = add int %i, 1
    %more = setlt int %i2, %n
    br bool %more, label %head, label %out
out:
    ret int %acc2
}
internal int %work2(int %n) {
entry:
    ret int 77
}
int %main() {
entry:
    br label %loop
loop:
    %j = phi int [ 0, %entry ], [ %j2, %loop ]
    %acc = phi int [ 0, %entry ], [ %acc2, %loop ]
    %w = call int %work(int 100)
    %acc2 = add int %acc, %w
    %j2 = add int %j, 1
    %more = setlt int %j2, 40
    br bool %more, label %loop, label %out
out:
    ret int %acc2
}
)";

CodeGenOptions
adaptiveOpts(uint64_t watermark = 500)
{
    CodeGenOptions opts;
    opts.optLevel = 2;
    opts.adaptive = true;
    opts.promoteWatermark = watermark;
    return opts;
}

LLEEResult
runLLEE(const std::vector<uint8_t> &bc, const std::string &target,
        CodeGenOptions opts, MachineSimulator::Dispatch dispatch,
        uint64_t sampleInterval = 1)
{
    LLEE llee(*getTarget(target), nullptr, opts);
    llee.setDispatch(dispatch);
    llee.setProfileSampleInterval(sampleInterval);
    return llee.execute(bc);
}

} // namespace

// --- Differential: threaded engine vs legacy switch engine -----------

class DispatchSuite : public ::testing::TestWithParam<std::string>
{};

TEST_P(DispatchSuite, ThreadedMatchesSwitchAtEveryTier)
{
    auto m = buildWorkload(GetParam(), 1);
    verifyOrDie(*m);
    auto bc = writeBytecode(*m);

    for (const std::string &target : targetNames()) {
        for (uint8_t level : {0, 1, 2}) {
            CodeGenOptions opts;
            opts.optLevel = level;
            LLEEResult sw = runLLEE(
                bc, target, opts, MachineSimulator::Dispatch::Switch);
            LLEEResult th = runLLEE(
                bc, target, opts,
                MachineSimulator::Dispatch::Threaded);
            ASSERT_TRUE(sw.exec.ok() && th.exec.ok())
                << target << " -O" << int(level);
            EXPECT_EQ(th.exec.value.i, sw.exec.value.i)
                << target << " -O" << int(level);
            EXPECT_EQ(th.output, sw.output)
                << target << " -O" << int(level);
            // Dispatch strategy must not change what executes, only
            // how fast: instruction-for-instruction identical.
            EXPECT_EQ(th.machineInstructionsExecuted,
                      sw.machineInstructionsExecuted)
                << target << " -O" << int(level);
        }
    }
}

TEST_P(DispatchSuite, ChainedTraceTierMatchesSwitchEngine)
{
    auto m = buildWorkload(GetParam(), 1);
    verifyOrDie(*m);
    auto bc = writeBytecode(*m);

    for (const std::string &target : targetNames()) {
        LLEEResult sw =
            runLLEE(bc, target, adaptiveOpts(200),
                    MachineSimulator::Dispatch::Switch);
        LLEEResult th =
            runLLEE(bc, target, adaptiveOpts(200),
                    MachineSimulator::Dispatch::Threaded);
        ASSERT_TRUE(sw.exec.ok() && th.exec.ok()) << target;
        EXPECT_EQ(th.exec.value.i, sw.exec.value.i) << target;
        EXPECT_EQ(th.output, sw.output) << target;
        EXPECT_EQ(th.machineInstructionsExecuted,
                  sw.machineInstructionsExecuted)
            << target;
        // The cached-hash profile must count exactly what the
        // rehash-per-event baseline counts, promoting identically.
        EXPECT_EQ(th.profileSamples, sw.profileSamples) << target;
        EXPECT_EQ(th.promotions, sw.promotions) << target;
    }
}

static std::vector<std::string>
workloadNames()
{
    std::vector<std::string> n;
    for (const auto &w : allWorkloads())
        n.push_back(w.name);
    return n;
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DispatchSuite, ::testing::ValuesIn(workloadNames()),
    [](const auto &info) {
        std::string s = info.param;
        for (char &c : s)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return s;
    });

// --- Superblock chaining protocol ------------------------------------

TEST(Chaining, TraceTierBodyChainsAndUnlinksOnInvalidate)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    const Function *work = m->getFunction("work");

    ExecutionContext ctx(*m);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    EdgeProfile profile;
    cm.setAdaptive(&profile, 500);
    MachineSimulator sim(ctx, cm);
    sim.setProfile(&profile);

    auto r = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok());
    // work crossed the watermark, was promoted, and its re-entered
    // trace-tier body executed chained.
    ASSERT_EQ(cm.tierOf(work), kTierTrace);
    ASSERT_GE(cm.chainedFunctions(), 1u);
    EXPECT_EQ(cm.chainsUnlinked(), 0u);

    ChainedFunction *chain = cm.chainFor(cm.cached(work));
    EXPECT_GT(chain->linkCount(), 0u);
    EXPECT_FALSE(chain->unlinked());

    // SMC invalidation severs every patched link, permanently.
    cm.invalidate(work);
    EXPECT_TRUE(chain->unlinked());
    EXPECT_EQ(chain->linkCount(), 0u);
    EXPECT_EQ(cm.chainsUnlinked(), 1u);
    EXPECT_EQ(cm.chainedFunctions(), 0u);
}

TEST(Chaining, SmcReplaceUnlinksTheRetiredChain)
{
    // llva.smc.replace.function from inside the program: the hot
    // callee is promoted (and chained), then replaced mid-run. The
    // retired chain must be unlinked, and the replacement visible
    // to future calls — under both dispatch engines.
    auto m = parseAssembly(R"(
declare void %llva.smc.replace.function(ubyte* %t, ubyte* %r)
internal int %work(int %n) {
entry:
    br label %head
head:
    %i = phi int [ 0, %entry ], [ %i2, %head ]
    %acc = phi int [ 0, %entry ], [ %acc2, %head ]
    %acc2 = add int %acc, %i
    %i2 = add int %i, 1
    %more = setlt int %i2, %n
    br bool %more, label %head, label %out
out:
    ret int %acc2
}
internal int %work2(int %n) {
entry:
    ret int 7
}
int %main() {
entry:
    br label %loop
loop:
    %j = phi int [ 0, %entry ], [ %j2, %loop ]
    %w = call int %work(int 100)
    %j2 = add int %j, 1
    %more = setlt int %j2, 40
    br bool %more, label %loop, label %swap
swap:
    %t = cast int (int)* %work to ubyte*
    %r = cast int (int)* %work2 to ubyte*
    call void %llva.smc.replace.function(ubyte* %t, ubyte* %r)
    %after = call int %work(int 100)
    ret int %after
}
)").orDie();
    verifyOrDie(*m);

    for (auto dispatch : {MachineSimulator::Dispatch::Threaded,
                          MachineSimulator::Dispatch::Switch}) {
        ExecutionContext ctx(*m);
        CodeManager cm(*getTarget("x86"), adaptiveOpts());
        EdgeProfile profile;
        cm.setAdaptive(&profile, 500);
        MachineSimulator sim(ctx, cm);
        sim.setDispatch(dispatch);
        sim.setProfile(&profile);

        auto r = sim.run(m->getFunction("main"));
        ASSERT_TRUE(r.ok());
        // Future invocations see the replacement...
        EXPECT_EQ(static_cast<int64_t>(r.value.i), 7);
        ASSERT_GE(cm.promotions(), 1u);
        // ...and under the threaded engine the promoted body's
        // chain was built, then severed by the SMC retirement.
        if (dispatch == MachineSimulator::Dispatch::Threaded)
            EXPECT_GE(cm.chainsUnlinked(), 1u);
    }
}

// --- Sampled, decaying profiling -------------------------------------

TEST(SampledProfile, WeightedSamplesEstimateExactCounts)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    auto bc = writeBytecode(*m);

    LLEEResult exact =
        runLLEE(bc, "x86", adaptiveOpts(),
                MachineSimulator::Dispatch::Threaded, 1);
    ASSERT_TRUE(exact.exec.ok());

    constexpr uint64_t kInterval = 8;
    LLEEResult sampled =
        runLLEE(bc, "x86", adaptiveOpts(),
                MachineSimulator::Dispatch::Threaded, kInterval);
    ASSERT_TRUE(sampled.exec.ok());

    // Same observable execution...
    EXPECT_EQ(sampled.exec.value.i, exact.exec.value.i);
    EXPECT_EQ(sampled.machineInstructionsExecuted,
              exact.machineInstructionsExecuted);
    // ...and totals stay in execution units: every Nth event is
    // recorded with weight N, so the estimate lands within one
    // sampling interval of the exact count, and the hot function
    // still crosses the watermark and gets promoted.
    ASSERT_GT(sampled.profileSamples, 0u);
    uint64_t lo = exact.profileSamples - kInterval;
    uint64_t hi = exact.profileSamples + kInterval;
    EXPECT_GE(sampled.profileSamples, lo);
    EXPECT_LE(sampled.profileSamples, hi);
    EXPECT_GE(sampled.promotions, 1u);
}

TEST(SampledProfile, DecayHalvesAndDropsDeadEntries)
{
    EdgeProfile p;
    BlockId a{1, 10}, b{1, 20}, c{2, 30};
    p.noteId(BlockId{}, a, 8);
    p.noteId(a, b, 3);
    p.noteId(BlockId{}, c, 1);

    p.decay(1);
    EXPECT_EQ(p.blocks.at(a), 4u);
    EXPECT_EQ(p.blocks.at(b), 1u);
    // The weight-1 entry decays to zero and is dropped entirely.
    EXPECT_EQ(p.blocks.count(c), 0u);
    EXPECT_EQ(p.fnSamples.count(2), 0u);
    EXPECT_EQ(p.edges.at({a, b}), 1u);
    // samples is recomputed from the surviving block counts.
    EXPECT_EQ(p.samples, 5u);

    p.decay(3);
    EXPECT_TRUE(p.empty());
    EXPECT_EQ(p.samples, 0u);
}

// --- Satellite 1: trap-handler outcomes ------------------------------

namespace {

/** main traps DivByZero; the registered handler is installed for
 *  that trap number. The handler itself then traps NullAccess. */
const char *kTrappingHandler = R"(
internal void %handler(long %trapno, ubyte* %info) {
entry:
    %v = load int* null
    ret void
}
int %main() {
entry:
    %z = sub int 1, 1
    %d = div int 10, %z
    ret int %d
}
)";

const char *kUnwindingHandler = R"(
internal void %handler(long %trapno, ubyte* %info) {
entry:
    unwind
}
int %main() {
entry:
    %z = sub int 1, 1
    %d = div int 10, %z
    ret int %d
}
)";

} // namespace

TEST(TrapDispatch, HandlerRaisedTrapSupersedesOriginal)
{
    auto m = parseAssembly(kTrappingHandler).orDie();
    verifyOrDie(*m);
    {
        ExecutionContext ctx(*m);
        ctx.setTrapHandler(
            static_cast<unsigned>(TrapKind::DivByZero),
            ctx.memory().functionAddress(m->getFunction("handler")));
        Interpreter interp(ctx);
        auto r = interp.run(m->getFunction("main"));
        EXPECT_EQ(r.trap, TrapKind::NullAccess);
    }
    for (const std::string &target : targetNames()) {
        ExecutionContext ctx(*m);
        ctx.setTrapHandler(
            static_cast<unsigned>(TrapKind::DivByZero),
            ctx.memory().functionAddress(m->getFunction("handler")));
        CodeManager cm(*getTarget(target));
        MachineSimulator sim(ctx, cm);
        auto r = sim.run(m->getFunction("main"));
        EXPECT_EQ(r.trap, TrapKind::NullAccess) << target;
    }
}

TEST(TrapDispatch, UnwindEscapingHandlerIsSurfaced)
{
    auto m = parseAssembly(kUnwindingHandler).orDie();
    verifyOrDie(*m);
    {
        ExecutionContext ctx(*m);
        ctx.setTrapHandler(
            static_cast<unsigned>(TrapKind::DivByZero),
            ctx.memory().functionAddress(m->getFunction("handler")));
        Interpreter interp(ctx);
        auto r = interp.run(m->getFunction("main"));
        EXPECT_EQ(r.trap, TrapKind::DivByZero);
        EXPECT_TRUE(r.unwound);
    }
    {
        ExecutionContext ctx(*m);
        ctx.setTrapHandler(
            static_cast<unsigned>(TrapKind::DivByZero),
            ctx.memory().functionAddress(m->getFunction("handler")));
        CodeManager cm(*getTarget("sparc"));
        MachineSimulator sim(ctx, cm);
        auto r = sim.run(m->getFunction("main"));
        EXPECT_EQ(r.trap, TrapKind::DivByZero);
        EXPECT_TRUE(r.unwound);
    }
}

TEST(TrapDispatch, UnresolvedHandlerAddressIsCounted)
{
    auto m = parseAssembly(R"(
int %main() {
entry:
    %z = sub int 1, 1
    %d = div int 10, %z
    ret int %d
}
)").orDie();
    verifyOrDie(*m);

    {
        uint64_t before = stats::value("vm.trap_handler_missing");
        ExecutionContext ctx(*m);
        // A registered address that names no function: the handler
        // silently never runs, but the statistic records it.
        ctx.setTrapHandler(
            static_cast<unsigned>(TrapKind::DivByZero), 0x12345);
        Interpreter interp(ctx);
        auto r = interp.run(m->getFunction("main"));
        EXPECT_EQ(r.trap, TrapKind::DivByZero);
        EXPECT_EQ(stats::value("vm.trap_handler_missing"),
                  before + 1);
    }
    {
        uint64_t before = stats::value("vm.trap_handler_missing");
        ExecutionContext ctx(*m);
        ctx.setTrapHandler(
            static_cast<unsigned>(TrapKind::DivByZero), 0x12345);
        CodeManager cm(*getTarget("x86"));
        MachineSimulator sim(ctx, cm);
        auto r = sim.run(m->getFunction("main"));
        EXPECT_EQ(r.trap, TrapKind::DivByZero);
        EXPECT_EQ(stats::value("vm.trap_handler_missing"),
                  before + 1);
    }
}

// --- Satellite 2: exact instruction budgets --------------------------

namespace {

const char *kSmallProgram = R"(
internal int %leaf(int %n) {
entry:
    %r = mul int %n, 3
    ret int %r
}
int %main() {
entry:
    %a = call int %leaf(int 5)
    %b = add int %a, 1
    ret int %b
}
)";

} // namespace

TEST(InstructionLimit, InterpreterBudgetIsExact)
{
    auto m = parseAssembly(kSmallProgram).orDie();
    verifyOrDie(*m);

    ExecutionContext probe(*m);
    Interpreter unlimited(probe);
    auto r0 = unlimited.run(m->getFunction("main"));
    ASSERT_TRUE(r0.ok());
    uint64_t total = r0.instructionsExecuted;
    ASSERT_GT(total, 1u);

    // A budget of exactly `total` completes; every smaller budget
    // must fault — no configuration may buy a free instruction.
    {
        ExecutionContext ctx(*m);
        Interpreter interp(ctx);
        interp.setInstructionLimit(total);
        EXPECT_TRUE(interp.run(m->getFunction("main")).ok());
    }
    for (uint64_t limit = 1; limit < total; ++limit) {
        ExecutionContext ctx(*m);
        Interpreter interp(ctx);
        interp.setInstructionLimit(limit);
        EXPECT_THROW(interp.run(m->getFunction("main")), FatalError)
            << "limit " << limit << " of " << total;
    }
}

TEST(InstructionLimit, SimulatorBudgetIsExactAcrossTierFallback)
{
    // Pin the callee to the interpreter tier, so the budget crosses
    // the native -> interpretFallback boundary mid-run. The drained
    // budget must fault *at the handoff*, not grant the interpreter
    // a free instruction (the old off-by-one).
    auto m = parseAssembly(kSmallProgram).orDie();
    verifyOrDie(*m);

    auto totalWith = [&](uint64_t limit) -> uint64_t {
        ExecutionContext ctx(*m);
        CodeManager cm(*getTarget("x86"));
        cm.markInterpreted(m->getFunction("leaf"));
        MachineSimulator sim(ctx, cm);
        if (limit)
            sim.setInstructionLimit(limit);
        auto r = sim.run(m->getFunction("main"));
        EXPECT_TRUE(r.ok());
        return sim.instructionsExecuted();
    };

    uint64_t total = totalWith(0);
    ASSERT_GT(total, 1u);
    EXPECT_EQ(totalWith(total), total); // exact budget completes

    for (uint64_t limit = 1; limit < total; ++limit) {
        ExecutionContext ctx(*m);
        CodeManager cm(*getTarget("x86"));
        cm.markInterpreted(m->getFunction("leaf"));
        MachineSimulator sim(ctx, cm);
        sim.setInstructionLimit(limit);
        EXPECT_THROW(sim.run(m->getFunction("main")), FatalError)
            << "limit " << limit << " of " << total;
    }
}

TEST(InstructionLimit, ChainedFastPathHonorsTheBudget)
{
    // The superblock fast path has its own limit check: budgets are
    // exact at the trace tier too.
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);

    auto run = [&](uint64_t limit) {
        ExecutionContext ctx(*m);
        CodeManager cm(*getTarget("x86"), adaptiveOpts());
        EdgeProfile profile;
        cm.setAdaptive(&profile, 500);
        MachineSimulator sim(ctx, cm);
        sim.setProfile(&profile);
        if (limit)
            sim.setInstructionLimit(limit);
        auto r = sim.run(m->getFunction("main"));
        EXPECT_TRUE(r.ok());
        return sim.instructionsExecuted();
    };

    uint64_t total = run(0);
    EXPECT_EQ(run(total), total);
    {
        ExecutionContext ctx(*m);
        CodeManager cm(*getTarget("x86"), adaptiveOpts());
        EdgeProfile profile;
        cm.setAdaptive(&profile, 500);
        MachineSimulator sim(ctx, cm);
        sim.setProfile(&profile);
        sim.setInstructionLimit(total - 1);
        EXPECT_THROW(sim.run(m->getFunction("main")), FatalError);
    }
}
