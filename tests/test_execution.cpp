/**
 * @file
 * Execution-engine tests: interpreter semantics, simulator/JIT
 * correctness, and differential testing of all three engines on
 * hand-written programs covering every opcode and type.
 */

#include <gtest/gtest.h>

#include "parser/parser.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

struct RunOutcome
{
    int64_t value;
    std::string output;
    bool ok;
};

RunOutcome
interpret(Module &m, const std::vector<RtValue> &args = {})
{
    ExecutionContext ctx(m);
    Interpreter interp(ctx);
    interp.setInstructionLimit(50000000);
    auto r = interp.run(m.getFunction("main"), args);
    return {static_cast<int64_t>(r.value.i), ctx.output(), r.ok()};
}

RunOutcome
simulate(Module &m, const std::string &target,
         CodeGenOptions::Allocator alloc =
             CodeGenOptions::Allocator::LinearScan,
         const std::vector<RtValue> &args = {})
{
    ExecutionContext ctx(m);
    CodeGenOptions opts;
    opts.allocator = alloc;
    CodeManager cm(*getTarget(target), opts);
    MachineSimulator sim(ctx, cm);
    sim.setInstructionLimit(500000000);
    auto r = sim.run(m.getFunction("main"), args);
    return {static_cast<int64_t>(r.value.i), ctx.output(), r.ok()};
}

/** Parse, verify, and require identical results on all engines. */
int64_t
differential(const std::string &src)
{
    auto m = parseAssembly(src).orDie();
    verifyOrDie(*m);
    RunOutcome ref = interpret(*m);
    EXPECT_TRUE(ref.ok);
    for (const char *t : {"x86", "sparc"}) {
        for (auto alloc : {CodeGenOptions::Allocator::Local,
                           CodeGenOptions::Allocator::LinearScan}) {
            RunOutcome r = simulate(*m, t, alloc);
            EXPECT_TRUE(r.ok) << t;
            EXPECT_EQ(r.value, ref.value) << t;
            EXPECT_EQ(r.output, ref.output) << t;
        }
    }
    return ref.value;
}

} // namespace

TEST(Execution, ArithmeticWidthsAndSignedness)
{
    EXPECT_EQ(differential(R"(
int %main() {
entry:
    ; ubyte wraps at 256
    %a = add ubyte 200, 100
    %aw = cast ubyte %a to int

    ; signed division truncates toward zero
    %b = div int -7, 2
    ; signed remainder keeps the dividend's sign
    %c = rem int -7, 2

    ; shr is arithmetic on signed, logical on unsigned
    %d = shr int -16, ubyte 2
    %e0 = cast int -16 to uint
    %e1 = shr uint %e0, ubyte 28
    %e = cast uint %e1 to int

    %s1 = mul int %aw, 1000000
    %s2 = mul int %b, 100000
    %s3 = mul int %c, 10000
    %s4 = mul int %d, 100
    %t1 = add int %s1, %s2
    %t2 = add int %t1, %s3
    %t3 = add int %t2, %s4
    %t4 = add int %t3, %e
    ret int %t4
}
)"),
              44 * 1000000 + (-3) * 100000 + (-1) * 10000 +
                  (-4) * 100 + 15);
}

TEST(Execution, ComparisonSignednessMatters)
{
    EXPECT_EQ(differential(R"(
int %main() {
entry:
    ; -1 as uint is huge
    %m1 = cast int -1 to uint
    %a = setgt uint %m1, 5
    %b = setlt int -1, 5
    %ai = cast bool %a to int
    %bi = cast bool %b to int
    %r0 = shl int %ai, ubyte 1
    %r = or int %r0, %bi
    ret int %r
}
)"),
              3);
}

TEST(Execution, FloatVsDoublePrecision)
{
    EXPECT_EQ(differential(R"(
int %main() {
entry:
    ; 0.1 is inexact; float and double disagree after scaling.
    %fd = add double 0.1, 0.2
    %ff0 = cast double 0.1 to float
    %ff1 = cast double 0.2 to float
    %ff = add float %ff0, %ff1
    %back = cast float %ff to double
    %same = seteq double %fd, %back
    %si = cast bool %same to int
    %big = mul double %fd, 1.0e9
    %bi = cast double %big to int
    %r = add int %bi, %si
    ret int %r
}
)"),
              300000000);
}

TEST(Execution, MemoryAndGEP)
{
    differential(R"(
%struct.P = type { int, [3 x long], %struct.P* }
int %main() {
entry:
    %p = alloca %struct.P
    %q = alloca %struct.P
    %f0 = getelementptr %struct.P* %p, long 0, ubyte 0
    store int 11, int* %f0
    %a1 = getelementptr %struct.P* %p, long 0, ubyte 1, long 2
    store long 22, long* %a1
    %lnk = getelementptr %struct.P* %p, long 0, ubyte 2
    store %struct.P* %q, %struct.P** %lnk
    %qf = getelementptr %struct.P* %q, long 0, ubyte 0
    store int 33, int* %qf

    ; chase p->link->field0
    %l = load %struct.P** %lnk
    %lf = getelementptr %struct.P* %l, long 0, ubyte 0
    %v1 = load int* %lf
    %v2 = load int* %f0
    %v3l = load long* %a1
    %v3 = cast long %v3l to int
    %t1 = mul int %v1, 10000
    %t2 = mul int %v2, 100
    %t3 = add int %t1, %t2
    %r = add int %t3, %v3
    ret int %r
}
)");
}

TEST(Execution, GlobalsInitializersVisible)
{
    EXPECT_EQ(differential(R"(
%tab = global [4 x long] [ long 10, long 20, long 30, long 40 ]
%scale = global long 3
int %main() {
entry:
    %p = getelementptr [4 x long]* %tab, long 0, long 2
    %v = load long* %p
    %s = load long* %scale
    %m = mul long %v, %s
    %r = cast long %m to int
    ret int %r
}
)"),
              90);
}

TEST(Execution, IndirectCallsThroughTable)
{
    EXPECT_EQ(differential(R"(
internal int %twice(int %x) {
entry:
    %r = mul int %x, 2
    ret int %r
}
internal int %thrice(int %x) {
entry:
    %r = mul int %x, 3
    ret int %r
}
%fns = global [2 x int (int)*] [ int (int)* %twice, int (int)* %thrice ]
int %main() {
entry:
    %p0 = getelementptr [2 x int (int)*]* %fns, long 0, long 0
    %f0 = load int (int)** %p0
    %p1 = getelementptr [2 x int (int)*]* %fns, long 0, long 1
    %f1 = load int (int)** %p1
    %a = call int %f0(int 10)
    %b = call int %f1(int 10)
    %r = add int %a, %b
    ret int %r
}
)"),
              50);
}

TEST(Execution, RecursionDeepEnough)
{
    EXPECT_EQ(differential(R"(
internal int %fib(int %n) {
entry:
    %c = setlt int %n, 2
    br bool %c, label %base, label %rec
base:
    ret int %n
rec:
    %n1 = sub int %n, 1
    %n2 = sub int %n, 2
    %f1 = call int %fib(int %n1)
    %f2 = call int %fib(int %n2)
    %s = add int %f1, %f2
    ret int %s
}
int %main() {
entry:
    %r = call int %fib(int 15)
    ret int %r
}
)"),
              610);
}

TEST(Execution, ManyArgumentsSpillToStack)
{
    // 8 arguments exceed sparc's 6 register slots.
    EXPECT_EQ(differential(R"(
internal long %sum8(long %a, long %b, long %c, long %d,
                    long %e, long %f, long %g, long %h) {
entry:
    %1 = add long %a, %b
    %2 = add long %1, %c
    %3 = add long %2, %d
    %4 = add long %3, %e
    %5 = add long %4, %f
    %6 = add long %5, %g
    %7 = add long %6, %h
    ret long %7
}
int %main() {
entry:
    %r = call long %sum8(long 1, long 2, long 3, long 4,
                         long 5, long 6, long 7, long 8)
    %t = cast long %r to int
    ret int %t
}
)"),
              36);
}

TEST(Execution, MixedIntFPArguments)
{
    EXPECT_EQ(differential(R"(
internal double %mix(long %a, double %x, long %b, double %y) {
entry:
    %af = cast long %a to double
    %bf = cast long %b to double
    %s1 = mul double %af, %x
    %s2 = mul double %bf, %y
    %s = add double %s1, %s2
    ret double %s
}
int %main() {
entry:
    %r = call double %mix(long 2, double 1.5, long 4, double 2.5)
    %t = cast double %r to int
    ret int %t
}
)"),
              13);
}

TEST(Execution, MBrDispatch)
{
    EXPECT_EQ(differential(R"(
internal int %classify(int %t) {
entry:
    mbr int %t, label %other [ int 0, label %zero, int 5, label %five, int 9, label %nine ]
zero:
    ret int 100
five:
    ret int 200
nine:
    ret int 300
other:
    ret int 400
}
int %main() {
entry:
    %a = call int %classify(int 0)
    %b = call int %classify(int 5)
    %c = call int %classify(int 9)
    %d = call int %classify(int 7)
    %s1 = add int %a, %b
    %s2 = add int %s1, %c
    %s3 = add int %s2, %d
    ret int %s3
}
)"),
              1000);
}

TEST(Execution, RuntimeOutputIdenticalAcrossEngines)
{
    auto m = parseAssembly(R"(
%msg = constant [14 x ubyte] c"llva says hi!\00"
declare int %puts(ubyte* %s)
declare void %putint(long %v)
declare void %putdouble(double %v)
int %main() {
entry:
    %g = getelementptr [14 x ubyte]* %msg, long 0, long 0
    %r = call int %puts(ubyte* %g)
    call void %putint(long -42)
    call void %putdouble(double 2.5)
    ret int 0
}
)").orDie();
    verifyOrDie(*m);
    RunOutcome ref = interpret(*m);
    EXPECT_EQ(ref.output, "llva says hi!\n-422.5");
    for (const char *t : {"x86", "sparc"}) {
        RunOutcome r = simulate(*m, t);
        EXPECT_EQ(r.output, ref.output) << t;
    }
}

TEST(Execution, HeapAllocationsWork)
{
    EXPECT_EQ(differential(R"(
declare ubyte* %malloc(ulong %n)
declare void %free(ubyte* %p)
int %main() {
entry:
    %raw = call ubyte* %malloc(ulong 80)
    %arr = cast ubyte* %raw to long*
    br label %fill
fill:
    %i = phi long [ 0, %entry ], [ %i2, %fill ]
    %slot = getelementptr long* %arr, long %i
    %sq = mul long %i, %i
    store long %sq, long* %slot
    %i2 = add long %i, 1
    %c = setlt long %i2, 10
    br bool %c, label %fill, label %sum
sum:
    %j = phi long [ 0, %fill ], [ %j2, %sum ]
    %acc = phi long [ 0, %fill ], [ %acc2, %sum ]
    %s2 = getelementptr long* %arr, long %j
    %v = load long* %s2
    %acc2 = add long %acc, %v
    %j2 = add long %j, 1
    %c2 = setlt long %j2, 10
    br bool %c2, label %sum, label %done
done:
    call void %free(ubyte* %raw)
    %r = cast long %acc2 to int
    ret int %r
}
)"),
              285);
}

TEST(Execution, JITTranslatesOnDemandOnly)
{
    auto m = parseAssembly(R"(
internal int %used() {
entry:
    ret int 1
}
internal int %unused() {
entry:
    ret int 2
}
int %main() {
entry:
    %r = call int %used()
    ret int %r
}
)").orDie();
    verifyOrDie(*m);
    ExecutionContext ctx(*m);
    CodeManager cm(*getTarget("sparc"));
    MachineSimulator sim(ctx, cm);
    sim.run(m->getFunction("main"));
    // Paper Section 5.2: "the JIT translates functions on demand,
    // so that unused code is not translated."
    EXPECT_TRUE(cm.has(m->getFunction("main")));
    EXPECT_TRUE(cm.has(m->getFunction("used")));
    EXPECT_FALSE(cm.has(m->getFunction("unused")));
    EXPECT_EQ(cm.functionsTranslated(), 2u);
}

TEST(Execution, InterpreterCountsInstructions)
{
    auto m = parseAssembly(R"(
int %main() {
entry:
    %a = add int 1, 2
    %b = add int %a, 3
    ret int %b
}
)").orDie();
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    auto r = interp.run(m->getFunction("main"));
    EXPECT_EQ(r.instructionsExecuted, 3u);
}

TEST(Execution, OptimizedCodeRunsFasterOnSimulator)
{
    const char *src = R"(
int %main() {
entry:
    %m = alloca int
    store int 0, int* %m
    br label %loop
loop:
    %i = phi int [ 0, %entry ], [ %i2, %loop ]
    %v = load int* %m
    %x1 = mul int %i, 1
    %x2 = add int %x1, 0
    %v2 = add int %v, %x2
    store int %v2, int* %m
    %i2 = add int %i, 1
    %c = setlt int %i2, 100
    br bool %c, label %loop, label %out
out:
    %r = load int* %m
    ret int %r
}
)";
    auto m0 = parseAssembly(src).orDie();
    auto m1 = parseAssembly(src).orDie();
    PassManager pm;
    addStandardPasses(pm, 1);
    pm.run(*m1);

    uint64_t insts0, insts1;
    int64_t v0, v1;
    {
        ExecutionContext ctx(*m0);
        CodeManager cm(*getTarget("sparc"));
        MachineSimulator sim(ctx, cm);
        v0 = static_cast<int64_t>(
            sim.run(m0->getFunction("main")).value.i);
        insts0 = sim.instructionsExecuted();
    }
    {
        ExecutionContext ctx(*m1);
        CodeManager cm(*getTarget("sparc"));
        MachineSimulator sim(ctx, cm);
        v1 = static_cast<int64_t>(
            sim.run(m1->getFunction("main")).value.i);
        insts1 = sim.instructionsExecuted();
    }
    EXPECT_EQ(v0, v1);
    EXPECT_LT(insts1, insts0);
}
