/**
 * @file
 * Differential fuzzing: randomly generated, well-typed LLVA programs
 * must (a) verify, (b) produce identical checksums and output on the
 * interpreter and both machine simulators under both register
 * allocators, (c) survive the O1/O2 pipelines with identical
 * semantics and verification after every pass, (d) round-trip
 * through virtual object code, and (e) round-trip through the
 * printer/parser. One seed = one program; failures reproduce
 * deterministically from the seed in the test name.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "fuzz_gen.h"
#include "parser/parser.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

struct Outcome
{
    uint64_t value = 0;
    std::string output;
    TrapKind trap = TrapKind::None;
    bool unwound = false;

    bool
    operator==(const Outcome &o) const
    {
        return value == o.value && output == o.output &&
               trap == o.trap && unwound == o.unwound;
    }
};

Outcome
interpret(Module &m)
{
    ExecutionContext ctx(m);
    Interpreter interp(ctx);
    interp.setInstructionLimit(20000000);
    auto r = interp.run(m.getFunction("main"));
    return {r.value.i, ctx.output(), r.trap, r.unwound};
}

Outcome
simulate(Module &m, const char *target,
         CodeGenOptions::Allocator alloc)
{
    ExecutionContext ctx(m);
    CodeGenOptions opts;
    opts.allocator = alloc;
    CodeManager cm(*getTarget(target), opts);
    MachineSimulator sim(ctx, cm);
    sim.setInstructionLimit(200000000);
    auto r = sim.run(m.getFunction("main"));
    return {r.value.i, ctx.output(), r.trap, r.unwound};
}

} // namespace

class Fuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Fuzz, AllEnginesAndPipelinesAgree)
{
    uint64_t seed = GetParam();
    fuzz::ProgramGen gen(seed);
    auto m = gen.generate();

    VerifyResult vr = verifyModule(*m);
    ASSERT_TRUE(vr.ok()) << "seed " << seed << ":\n" << vr.str();

    Outcome ref = interpret(*m);
    EXPECT_EQ(ref.trap, TrapKind::None) << "seed " << seed;

    // (b) every engine/allocator combination.
    for (const char *t : {"x86", "sparc"}) {
        for (auto alloc : {CodeGenOptions::Allocator::Local,
                           CodeGenOptions::Allocator::LinearScan}) {
            Outcome r = simulate(*m, t, alloc);
            EXPECT_TRUE(r == ref)
                << "seed " << seed << " target " << t
                << " value " << (int64_t)r.value << " vs "
                << (int64_t)ref.value;
        }
    }

    // (c) optimization pipelines preserve semantics.
    for (unsigned level : {1u, 2u}) {
        fuzz::ProgramGen gen2(seed);
        auto mo = gen2.generate();
        PassManager pm;
        pm.setVerifyEach(true);
        addStandardPasses(pm, level);
        pm.run(*mo);
        Outcome r = interpret(*mo);
        EXPECT_TRUE(r == ref) << "seed " << seed << " O" << level;
        Outcome rs = simulate(*mo, "sparc",
                              CodeGenOptions::Allocator::LinearScan);
        EXPECT_TRUE(rs == ref)
            << "seed " << seed << " O" << level << " sparc";
    }

    // (d) bytecode round trip.
    auto m2 = readBytecode(writeBytecode(*m)).orDie();
    EXPECT_TRUE(verifyModule(*m2).ok()) << "seed " << seed;
    Outcome rb = interpret(*m2);
    EXPECT_TRUE(rb == ref) << "seed " << seed << " bytecode";

    // (e) printer/parser round trip.
    auto m3 = parseAssembly(m->str()).orDie();
    Outcome rp = interpret(*m3);
    EXPECT_TRUE(rp == ref) << "seed " << seed << " reparse";
}

static std::vector<uint64_t>
seeds()
{
    std::vector<uint64_t> s;
    for (uint64_t i = 1; i <= 48; ++i)
        s.push_back(i * 2654435761u);
    return s;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::ValuesIn(seeds()),
                         [](const auto &info) {
                             return "seed_" +
                                    std::to_string(info.param);
                         });

// --- Parser mutation fuzzing -------------------------------------------
//
// The textual parser is a persistent-input boundary: arbitrary bytes
// must come back as Expected errors, never as a crash, a leak, or an
// uncaught exception. We mutate known-good sources (byte flips,
// splices, truncations) with a deterministic LCG so failures
// reproduce from the test name alone.

namespace {

/** xorshift-free deterministic byte source. */
struct Lcg
{
    uint64_t state;
    uint64_t
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    }
};

/** A corpus of valid sources with realistic surface syntax. */
std::vector<std::string>
parserCorpus()
{
    std::vector<std::string> corpus;
    fuzz::ProgramGen gen(0xc0ffee);
    corpus.push_back(gen.generate()->str());
    corpus.push_back(R"(
%struct.Node = type { long, %struct.Node* }
%lut = constant [4 x long] [ long 1, long -2, long 3, long 4 ]
%msg = constant [6 x ubyte] c"hello\00"
declare void %putint(long %v)
internal int %helper(int %x) {
entry:
    %c = setlt int %x, 0
    br bool %c, label %neg, label %pos
neg:
    ret int 0
pos:
    %r = mul int %x, 3
    ret int %r
}
int %main() {
entry:
    %a = call int %helper(int 5)
    %p = phi int [ %a, %entry ]
    call void %putint(long 11)
    ret int %a
}
)");
    return corpus;
}

/**
 * The property under test: any input either parses into a verified
 * module or yields a non-empty diagnostic. Throwing, crashing, and
 * (under ASan) leaking all fail the test.
 */
void
mustNotCrash(const std::string &src)
{
    auto r = parseAssembly(src, "fuzz");
    if (r.ok()) {
        // Parsed mutants must still be structurally sound modules.
        (void)(*r)->str();
    } else {
        EXPECT_FALSE(r.error().message().empty());
    }
}

} // namespace

TEST(ParserFuzz, ByteFlipsProduceDiagnosticsNotCrashes)
{
    for (const std::string &base : parserCorpus()) {
        Lcg rng{0x5eed + base.size()};
        for (int iter = 0; iter < 300; ++iter) {
            std::string s = base;
            int flips = 1 + static_cast<int>(rng.next() % 4);
            for (int i = 0; i < flips; ++i) {
                size_t pos = rng.next() % s.size();
                s[pos] = static_cast<char>(rng.next() & 0xff);
            }
            mustNotCrash(s);
        }
    }
}

TEST(ParserFuzz, TruncationsAndSplicesProduceDiagnostics)
{
    for (const std::string &base : parserCorpus()) {
        Lcg rng{0x7a11 + base.size()};
        // Every prefix-truncation strategy: cut mid-token, mid-string,
        // mid-function; also splice a random chunk over another.
        for (int iter = 0; iter < 200; ++iter) {
            std::string s = base.substr(0, rng.next() % base.size());
            mustNotCrash(s);
        }
        for (int iter = 0; iter < 100; ++iter) {
            std::string s = base;
            size_t from = rng.next() % s.size();
            size_t to = rng.next() % s.size();
            size_t len = rng.next() % 32;
            s.replace(to, std::min(len, s.size() - to),
                      s.substr(from,
                               std::min(len, s.size() - from)));
            mustNotCrash(s);
        }
    }
}
