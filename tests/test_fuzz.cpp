/**
 * @file
 * Differential fuzzing: randomly generated, well-typed LLVA programs
 * must (a) verify, (b) produce identical checksums and output on the
 * interpreter and both machine simulators under both register
 * allocators, (c) survive the O1/O2 pipelines with identical
 * semantics and verification after every pass, (d) round-trip
 * through virtual object code, and (e) round-trip through the
 * printer/parser. One seed = one program; failures reproduce
 * deterministically from the seed in the test name.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "fuzz_gen.h"
#include "parser/parser.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

struct Outcome
{
    uint64_t value = 0;
    std::string output;
    TrapKind trap = TrapKind::None;
    bool unwound = false;

    bool
    operator==(const Outcome &o) const
    {
        return value == o.value && output == o.output &&
               trap == o.trap && unwound == o.unwound;
    }
};

Outcome
interpret(Module &m)
{
    ExecutionContext ctx(m);
    Interpreter interp(ctx);
    interp.setInstructionLimit(20000000);
    auto r = interp.run(m.getFunction("main"));
    return {r.value.i, ctx.output(), r.trap, r.unwound};
}

Outcome
simulate(Module &m, const char *target,
         CodeGenOptions::Allocator alloc)
{
    ExecutionContext ctx(m);
    CodeGenOptions opts;
    opts.allocator = alloc;
    CodeManager cm(*getTarget(target), opts);
    MachineSimulator sim(ctx, cm);
    sim.setInstructionLimit(200000000);
    auto r = sim.run(m.getFunction("main"));
    return {r.value.i, ctx.output(), r.trap, r.unwound};
}

} // namespace

class Fuzz : public ::testing::TestWithParam<uint64_t>
{};

TEST_P(Fuzz, AllEnginesAndPipelinesAgree)
{
    uint64_t seed = GetParam();
    fuzz::ProgramGen gen(seed);
    auto m = gen.generate();

    VerifyResult vr = verifyModule(*m);
    ASSERT_TRUE(vr.ok()) << "seed " << seed << ":\n" << vr.str();

    Outcome ref = interpret(*m);
    EXPECT_EQ(ref.trap, TrapKind::None) << "seed " << seed;

    // (b) every engine/allocator combination.
    for (const char *t : {"x86", "sparc"}) {
        for (auto alloc : {CodeGenOptions::Allocator::Local,
                           CodeGenOptions::Allocator::LinearScan}) {
            Outcome r = simulate(*m, t, alloc);
            EXPECT_TRUE(r == ref)
                << "seed " << seed << " target " << t
                << " value " << (int64_t)r.value << " vs "
                << (int64_t)ref.value;
        }
    }

    // (c) optimization pipelines preserve semantics.
    for (unsigned level : {1u, 2u}) {
        fuzz::ProgramGen gen2(seed);
        auto mo = gen2.generate();
        PassManager pm;
        pm.setVerifyEach(true);
        addStandardPasses(pm, level);
        pm.run(*mo);
        Outcome r = interpret(*mo);
        EXPECT_TRUE(r == ref) << "seed " << seed << " O" << level;
        Outcome rs = simulate(*mo, "sparc",
                              CodeGenOptions::Allocator::LinearScan);
        EXPECT_TRUE(rs == ref)
            << "seed " << seed << " O" << level << " sparc";
    }

    // (d) bytecode round trip.
    auto m2 = readBytecode(writeBytecode(*m)).orDie();
    EXPECT_TRUE(verifyModule(*m2).ok()) << "seed " << seed;
    Outcome rb = interpret(*m2);
    EXPECT_TRUE(rb == ref) << "seed " << seed << " bytecode";

    // (e) printer/parser round trip.
    auto m3 = parseAssembly(m->str());
    Outcome rp = interpret(*m3);
    EXPECT_TRUE(rp == ref) << "seed " << seed << " reparse";
}

static std::vector<uint64_t>
seeds()
{
    std::vector<uint64_t> s;
    for (uint64_t i = 1; i <= 48; ++i)
        s.push_back(i * 2654435761u);
    return s;
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::ValuesIn(seeds()),
                         [](const auto &info) {
                             return "seed_" +
                                    std::to_string(info.param);
                         });
