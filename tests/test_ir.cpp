/**
 * @file
 * Unit tests for the SSA value graph: use lists, RAUW, constants
 * interning, instruction construction/cloning, the 28-opcode set,
 * the ExceptionsEnabled defaults, and CFG surgery on basic blocks.
 */

#include <gtest/gtest.h>

#include "ir/ir_builder.h"
#include "ir/instructions.h"
#include "ir/module.h"

using namespace llva;

class IRTest : public ::testing::Test
{
  protected:
    IRTest()
        : m("t"), tc(m.types())
    {
        f = m.createFunction(tc.functionOf(tc.intTy(), {tc.intTy()}),
                             "f");
        entry = f->createBlock("entry");
    }

    Module m;
    TypeContext &tc;
    Function *f;
    BasicBlock *entry;
};

TEST_F(IRTest, OpcodeCountIsTwentyEight)
{
    EXPECT_EQ(kNumOpcodes, 28u);
    // Table 1's groups: 5 arithmetic, 5 bitwise, 6 comparison,
    // 5 control-flow, 4 memory, 3 other.
    EXPECT_STREQ(opcodeName(Opcode::Add), "add");
    EXPECT_STREQ(opcodeName(Opcode::Shr), "shr");
    EXPECT_STREQ(opcodeName(Opcode::SetGE), "setge");
    EXPECT_STREQ(opcodeName(Opcode::MBr), "mbr");
    EXPECT_STREQ(opcodeName(Opcode::Unwind), "unwind");
    EXPECT_STREQ(opcodeName(Opcode::GetElementPtr),
                 "getelementptr");
    EXPECT_STREQ(opcodeName(Opcode::Phi), "phi");
}

TEST_F(IRTest, ExceptionsEnabledDefaults)
{
    // Section 3.3: "true by default for load, store and div
    // instructions; false by default for all other operations."
    EXPECT_TRUE(defaultExceptionsEnabled(Opcode::Load));
    EXPECT_TRUE(defaultExceptionsEnabled(Opcode::Store));
    EXPECT_TRUE(defaultExceptionsEnabled(Opcode::Div));
    EXPECT_TRUE(defaultExceptionsEnabled(Opcode::Rem));
    EXPECT_FALSE(defaultExceptionsEnabled(Opcode::Add));
    EXPECT_FALSE(defaultExceptionsEnabled(Opcode::Mul));
    EXPECT_FALSE(defaultExceptionsEnabled(Opcode::Call));
    EXPECT_FALSE(defaultExceptionsEnabled(Opcode::Cast));
}

TEST_F(IRTest, UseListsTrackOperands)
{
    IRBuilder b(m, entry);
    Value *arg = f->arg(0);
    EXPECT_EQ(arg->numUses(), 0u);
    Value *x = b.add(arg, b.cInt(1), "x");
    EXPECT_EQ(arg->numUses(), 1u);
    Value *y = b.mul(arg, arg, "y");
    EXPECT_EQ(arg->numUses(), 3u); // one per operand slot
    b.ret(b.add(x, y));
    EXPECT_EQ(x->numUses(), 1u);
}

TEST_F(IRTest, ReplaceAllUsesWith)
{
    IRBuilder b(m, entry);
    Value *arg = f->arg(0);
    Value *x = b.add(arg, b.cInt(1), "x");
    Value *y = b.mul(x, x, "y");
    b.ret(y);

    Value *c = b.cInt(42);
    x->replaceAllUsesWith(c);
    EXPECT_EQ(x->numUses(), 0u);
    auto *mul = cast<BinaryOperator>(y);
    EXPECT_EQ(mul->lhs(), c);
    EXPECT_EQ(mul->rhs(), c);
}

TEST_F(IRTest, ConstantsAreInterned)
{
    EXPECT_EQ(m.constantInt(tc.intTy(), 7),
              m.constantInt(tc.intTy(), 7));
    EXPECT_NE(m.constantInt(tc.intTy(), 7),
              m.constantInt(tc.longTy(), 7));
    EXPECT_EQ(m.constantFP(tc.doubleTy(), 1.5),
              m.constantFP(tc.doubleTy(), 1.5));
    EXPECT_EQ(m.constantNull(tc.pointerTo(tc.intTy())),
              m.constantNull(tc.pointerTo(tc.intTy())));
    EXPECT_EQ(m.constantBool(true), m.constantBool(true));
}

TEST_F(IRTest, ConstantIntCanonicalization)
{
    // Negative value in a signed byte: stored sign-extended.
    ConstantInt *c = m.constantInt(tc.sbyteTy(), 0xff);
    EXPECT_EQ(c->sext(), -1);
    // Same bits in an unsigned byte: stored zero-extended.
    ConstantInt *u = m.constantInt(tc.ubyteTy(), 0xff);
    EXPECT_EQ(u->zext(), 255u);
    // Truncation on overflow.
    EXPECT_EQ(m.constantInt(tc.ubyteTy(), 0x1ff)->zext(), 255u);
}

TEST_F(IRTest, TerminatorClassification)
{
    IRBuilder b(m, entry);
    BasicBlock *other = f->createBlock("other");
    Instruction *br = b.br(other);
    EXPECT_TRUE(br->isTerminator());
    EXPECT_EQ(br->numSuccessors(), 1u);
    EXPECT_EQ(br->successor(0), other);

    b.setInsertPoint(other);
    Instruction *ret = b.ret(b.cInt(0));
    EXPECT_TRUE(ret->isTerminator());
    EXPECT_EQ(ret->numSuccessors(), 0u);
}

TEST_F(IRTest, ConditionalBranchSuccessors)
{
    IRBuilder b(m, entry);
    BasicBlock *t = f->createBlock("t");
    BasicBlock *e = f->createBlock("e");
    Value *c = b.setLT(f->arg(0), b.cInt(5), "c");
    Instruction *br = b.condBr(c, t, e);
    EXPECT_EQ(br->numSuccessors(), 2u);
    EXPECT_EQ(br->successor(0), t);
    EXPECT_EQ(br->successor(1), e);

    // Predecessors derive from the use lists.
    auto preds = t->predecessors();
    ASSERT_EQ(preds.size(), 1u);
    EXPECT_EQ(preds[0], entry);
}

TEST_F(IRTest, MBrCases)
{
    IRBuilder b(m, entry);
    BasicBlock *d = f->createBlock("default");
    BasicBlock *c1 = f->createBlock("c1");
    MBrInst *mbr = b.mbr(f->arg(0), d);
    mbr->addCase(m.constantInt(tc.intTy(), 1), c1);
    mbr->addCase(m.constantInt(tc.intTy(), 2), c1);
    EXPECT_EQ(mbr->numCases(), 2u);
    EXPECT_EQ(mbr->numSuccessors(), 3u);
    EXPECT_EQ(mbr->defaultDest(), d);
    EXPECT_EQ(mbr->caseValue(0)->sext(), 1);
    EXPECT_EQ(mbr->caseDest(1), c1);
    mbr->removeCase(0);
    EXPECT_EQ(mbr->numCases(), 1u);
    EXPECT_EQ(mbr->caseValue(0)->sext(), 2);
}

TEST_F(IRTest, GEPResultTypes)
{
    IRBuilder b(m, entry);
    StructType *qt = tc.namedStruct("struct.QuadTree", {});
    qt->setBody({tc.doubleTy(), tc.arrayOf(tc.pointerTo(qt), 4)});
    Value *p = b.alloca_(qt, nullptr, "t");

    // &T[0].Children[3]: %struct.QuadTree** result.
    Value *g = b.gep(p, {b.cLong(0), b.cUByte(1), b.cLong(3)});
    EXPECT_EQ(g->type(), tc.pointerTo(tc.pointerTo(qt)));

    // &T[0].Data: double*.
    Value *d = b.gep(p, {b.cLong(0), b.cUByte(0)});
    EXPECT_EQ(d->type(), tc.pointerTo(tc.doubleTy()));
}

TEST_F(IRTest, GEPRejectsBadIndices)
{
    IRBuilder b(m, entry);
    Value *p = b.alloca_(tc.intTy());
    EXPECT_THROW(b.gep(p, {b.cLong(0), b.cUByte(0)}), FatalError);
}

TEST_F(IRTest, PhiIncomingManagement)
{
    IRBuilder b(m, entry);
    BasicBlock *l = f->createBlock("l");
    BasicBlock *r = f->createBlock("r");
    BasicBlock *join = f->createBlock("join");
    b.condBr(b.setLT(f->arg(0), b.cInt(0)), l, r);
    b.setInsertPoint(l);
    b.br(join);
    b.setInsertPoint(r);
    b.br(join);
    b.setInsertPoint(join);
    PhiNode *phi = b.phi(tc.intTy(), "p");
    phi->addIncoming(b.cInt(1), l);
    phi->addIncoming(b.cInt(2), r);
    EXPECT_EQ(phi->numIncoming(), 2u);
    EXPECT_EQ(phi->incomingValueFor(l),
              static_cast<Value *>(b.cInt(1)));
    EXPECT_EQ(phi->incomingIndexFor(r), 1);
    phi->removeIncoming(0);
    EXPECT_EQ(phi->numIncoming(), 1u);
    EXPECT_EQ(phi->incomingBlock(0), r);
}

TEST_F(IRTest, CloneCopiesOperandsAndAttributes)
{
    IRBuilder b(m, entry);
    auto *load = cast<LoadInst>(
        b.load(b.alloca_(tc.intTy(), nullptr, "slot"), "v"));
    load->setExceptionsEnabled(false);
    Instruction *clone = load->clone();
    EXPECT_EQ(clone->opcode(), Opcode::Load);
    EXPECT_EQ(clone->operand(0), load->operand(0));
    EXPECT_FALSE(clone->exceptionsEnabled());
    clone->dropAllOperands();
    delete clone;
}

TEST_F(IRTest, EraseInstructionUpdatesUseLists)
{
    IRBuilder b(m, entry);
    Value *arg = f->arg(0);
    Instruction *x =
        cast<Instruction>(b.add(arg, b.cInt(1), "x"));
    EXPECT_EQ(arg->numUses(), 1u);
    x->eraseFromParent();
    EXPECT_EQ(arg->numUses(), 0u);
    EXPECT_TRUE(entry->empty());
}

TEST_F(IRTest, SplitBlockMovesTail)
{
    IRBuilder b(m, entry);
    Value *x = b.add(f->arg(0), b.cInt(1), "x");
    Instruction *y =
        cast<Instruction>(b.mul(x, x, "y"));
    b.ret(cast<Instruction>(y));

    BasicBlock *tail = entry->splitBefore(y, "tail");
    EXPECT_EQ(entry->size(), 2u); // add + br
    EXPECT_EQ(tail->size(), 2u);  // mul + ret
    EXPECT_EQ(entry->terminator()->successor(0), tail);
    EXPECT_EQ(y->parent(), tail);
}

TEST_F(IRTest, FunctionValueIsPointerToFunctionType)
{
    auto *pt = cast<PointerType>(f->type());
    EXPECT_TRUE(pt->pointee()->isFunction());
    EXPECT_EQ(cast<FunctionType>(pt->pointee())->returnType(),
              tc.intTy());
}

TEST_F(IRTest, IntrinsicNameDetection)
{
    Function *intr = m.createFunction(
        tc.functionOf(tc.voidTy(), {}), "llva.os.set.privileged");
    EXPECT_TRUE(intr->isIntrinsic());
    EXPECT_FALSE(f->isIntrinsic());
}

TEST_F(IRTest, ModuleLookupAndCounts)
{
    EXPECT_EQ(m.getFunction("f"), f);
    EXPECT_EQ(m.getFunction("nope"), nullptr);
    IRBuilder b(m, entry);
    b.ret(b.cInt(0));
    EXPECT_EQ(m.instructionCount(), 1u);
}

TEST_F(IRTest, GlobalVariables)
{
    GlobalVariable *g = m.createGlobal(
        tc.intTy(), "g", m.constantInt(tc.intTy(), 5), false);
    EXPECT_EQ(g->containedType(), tc.intTy());
    EXPECT_EQ(g->type(), tc.pointerTo(tc.intTy()));
    EXPECT_EQ(m.getGlobal("g"), g);
    auto *init = cast<ConstantInt>(g->initializer());
    EXPECT_EQ(init->sext(), 5);
}

TEST_F(IRTest, ConstantStrings)
{
    ConstantString *s = m.constantString("hi");
    EXPECT_EQ(s->data(), std::string("hi\0", 3));
    EXPECT_EQ(s->type(), tc.arrayOf(tc.ubyteTy(), 3));
    ConstantString *raw = m.constantString("hi", false);
    EXPECT_EQ(raw->data().size(), 2u);
}

TEST_F(IRTest, MayTrapFollowsAttribute)
{
    IRBuilder b(m, entry);
    auto *div = cast<Instruction>(
        b.div(f->arg(0), b.cInt(3), "d"));
    EXPECT_TRUE(div->mayTrap());
    div->setExceptionsEnabled(false);
    EXPECT_FALSE(div->mayTrap());
    auto *add = cast<Instruction>(
        b.add(f->arg(0), b.cInt(3), "a"));
    EXPECT_FALSE(add->mayTrap());
}

TEST_F(IRTest, CastBuilderSkipsNoop)
{
    IRBuilder b(m, entry);
    Value *v = f->arg(0);
    EXPECT_EQ(b.cast_(v, tc.intTy()), v);
    EXPECT_NE(b.cast_(v, tc.longTy()), v);
}
