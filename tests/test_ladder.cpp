/**
 * @file
 * Fault containment and tiered degradation: the pass sandbox
 * (snapshot / guard / budget / restore), the -O2 -> -O1 -> -O0 ->
 * interpreter ladder, the envelope-cached achieved tier, the
 * verify-each and -opt-bisect-limit localization aids, and the
 * AnalysisManager preservation audit. Faults are injected through
 * the TranslationHooks test seams and deliberately broken test-only
 * passes; in every case the program must finish with output
 * byte-identical to the fault-free run.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "ir/instructions.h"
#include "llee/llee.h"
#include "parser/parser.h"
#include "support/statistic.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

const char *kProgram = R"(
declare void %putint(long %v)
internal int %helper(int %x) {
entry:
    %a = mul int %x, 3
    %b = add int %a, 4
    ret int %b
}
int %main() {
entry:
    %a = call int %helper(int 5)
    %b = call int %helper(int 7)
    %s = add int %a, %b
    %l = cast int %s to long
    call void %putint(long %l)
    ret int %s
}
)";

std::unique_ptr<Module>
parseProgram()
{
    auto m = parseAssembly(kProgram).orDie();
    verifyOrDie(*m);
    return m;
}

struct Baseline
{
    uint64_t value;
    std::string output;
};

Baseline
interpret(Module &m)
{
    ExecutionContext ctx(m);
    Interpreter interp(ctx);
    auto r = interp.run(m.getFunction("main"));
    EXPECT_TRUE(r.ok());
    return {r.value.i, ctx.output()};
}

/** Throws (a pass bug) when visiting the targeted function. */
class FaultPass : public FunctionPass
{
  public:
    explicit FaultPass(std::string only = "")
        : only_(std::move(only))
    {}

    PassResult
    run(Function &f, AnalysisManager &) override
    {
        if (only_.empty() || f.name() == only_)
            fatal("injected fault visiting %s", f.name().c_str());
        return PassResult::unchanged();
    }

    const char *name() const override { return "inject-fault"; }

  private:
    std::string only_;
};

/** Mutates the function, then throws: tests snapshot restore. */
class MutateThenThrowPass : public FunctionPass
{
  public:
    PassResult
    run(Function &f, AnalysisManager &) override
    {
        BasicBlock *bb = f.entryBlock();
        Module &m = *f.parent();
        ConstantInt *one = m.constantInt(m.types().intTy(), 1);
        bb->insertBefore(bb->terminator(),
                         std::unique_ptr<Instruction>(
                             new BinaryOperator(Opcode::Add, one,
                                                one)));
        fatal("fault after mutating %s", f.name().c_str());
    }

    const char *name() const override { return "mutate-throw"; }
};

/** Appends \p count dead instructions (exercises the IR budget). */
class BloatPass : public FunctionPass
{
  public:
    explicit BloatPass(size_t count)
        : count_(count)
    {}

    PassResult
    run(Function &f, AnalysisManager &) override
    {
        BasicBlock *bb = f.entryBlock();
        Module &m = *f.parent();
        ConstantInt *one = m.constantInt(m.types().intTy(), 1);
        for (size_t i = 0; i < count_; ++i)
            bb->insertBefore(bb->terminator(),
                             std::unique_ptr<Instruction>(
                                 new BinaryOperator(Opcode::Add, one,
                                                    one)));
        return PassResult::modified(PreservedAnalyses::all());
    }

    const char *name() const override { return "bloat"; }

  private:
    size_t count_;
};

/** Deletes the entry terminator: leaves verifiably broken IR. */
class CorruptIRPass : public FunctionPass
{
  public:
    PassResult
    run(Function &f, AnalysisManager &) override
    {
        BasicBlock *bb = f.entryBlock();
        bb->erase(bb->terminator());
        return PassResult::modified(PreservedAnalyses::none());
    }

    const char *name() const override { return "corrupt-ir"; }
};

/** Adds 1 to main's return value: a deterministic miscompile. */
class BreakSemanticsPass : public FunctionPass
{
  public:
    PassResult
    run(Function &f, AnalysisManager &) override
    {
        Module &m = *f.parent();
        bool changed = false;
        for (auto &bb : f) {
            auto *ret = dyn_cast<ReturnInst>(bb->terminator());
            if (!ret || !ret->returnValue())
                continue;
            Value *v = ret->returnValue();
            if (v->type() != m.types().intTy())
                continue;
            Instruction *bump = bb->insertBefore(
                ret, std::unique_ptr<Instruction>(new BinaryOperator(
                         Opcode::Add, v,
                         m.constantInt(m.types().intTy(), 1))));
            ret->setOperand(0, bump);
            changed = true;
        }
        return changed
                   ? PassResult::modified(PreservedAnalyses::all())
                   : PassResult::unchanged();
    }

    const char *name() const override { return "break-semantics"; }
};

/** Rewires the CFG but lies that it preserved everything. */
class LyingPass : public FunctionPass
{
  public:
    PassResult
    run(Function &f, AnalysisManager &) override
    {
        BasicBlock *entry = f.entryBlock();
        auto *br = dyn_cast<BranchInst>(entry->terminator());
        if (!br || !br->isConditional())
            return PassResult::unchanged();
        BasicBlock *taken = br->target(0);
        entry->erase(br);
        entry->append(std::unique_ptr<Instruction>(
            new BranchInst(f.parent()->types(), taken)));
        // The CFG changed (one block went unreachable), so any
        // cached DominatorTree is stale — yet we claim otherwise.
        return PassResult::modified(PreservedAnalyses::all());
    }

    const char *name() const override { return "lying-pass"; }
};

} // namespace

// --- Pass sandbox ------------------------------------------------------

TEST(Sandbox, ContainsThrowingPassAndRestoresIR)
{
    auto m = parseProgram();
    Baseline ref = interpret(*m);
    std::string before = m->str();

    uint64_t contained = stats::value("passes.contained_failures");

    PassManager pm;
    pm.setSandbox(true);
    pm.add(createMem2RegPass());
    pm.add(std::make_unique<MutateThenThrowPass>());
    pm.add(createInstCombinePass());
    pm.run(*m);

    ASSERT_EQ(pm.containedFailures().size(), 2u); // helper + main
    EXPECT_EQ(pm.containedFailures()[0].pass, "mutate-throw");
    EXPECT_EQ(pm.containedFailures()[0].unit, "helper");
    EXPECT_NE(pm.containedFailures()[0].reason.find("pass fault"),
              std::string::npos);
    EXPECT_EQ(stats::value("passes.contained_failures"),
              contained + 2);

    // The rest of the pipeline still ran and the program still works.
    verifyOrDie(*m);
    Baseline after = interpret(*m);
    EXPECT_EQ(after.value, ref.value);
    EXPECT_EQ(after.output, ref.output);
}

TEST(Sandbox, RestoreIsByteExactWhenEveryPassFails)
{
    auto m = parseProgram();
    std::string before = m->str();

    PassManager pm;
    pm.setSandbox(true);
    pm.add(std::make_unique<MutateThenThrowPass>());
    pm.run(*m);

    ASSERT_EQ(pm.containedFailures().size(), 2u);
    // Only contained-and-restored passes ran: the printed module
    // must be identical down to value names.
    EXPECT_EQ(m->str(), before);
}

TEST(Sandbox, GrowthBudgetRollsBackBloat)
{
    auto m = parseProgram();
    std::string before = m->str();
    uint64_t exceeded = stats::value("passes.budget_exceeded");

    PassManager pm;
    pm.setSandbox(true);
    PassBudget budget;
    budget.maxGrowth = 1.5;
    budget.growthFloor = 4;
    pm.setBudget(budget);
    pm.add(std::make_unique<BloatPass>(100));
    pm.run(*m);

    ASSERT_EQ(pm.containedFailures().size(), 2u);
    EXPECT_NE(pm.containedFailures()[0].reason.find("grew"),
              std::string::npos);
    EXPECT_EQ(stats::value("passes.budget_exceeded"), exceeded + 2);
    EXPECT_EQ(m->str(), before);
}

TEST(Sandbox, WallClockBudgetRollsBackSlowPass)
{
    auto m = parseProgram();
    std::string before = m->str();

    PassManager pm;
    pm.setSandbox(true);
    PassBudget budget;
    budget.maxSeconds = 0.0; // any measurable time exceeds this
    pm.setBudget(budget);
    pm.add(std::make_unique<BloatPass>(2));
    pm.run(*m);

    ASSERT_EQ(pm.containedFailures().size(), 2u);
    EXPECT_NE(pm.containedFailures()[0].reason.find("wall clock"),
              std::string::npos);
    EXPECT_EQ(m->str(), before);
}

TEST(Sandbox, VerifyEachContainsIRBreakingPass)
{
    auto m = parseProgram();
    std::string before = m->str();

    PassManager pm;
    pm.setSandbox(true);
    pm.setVerifyEach(true);
    pm.add(std::make_unique<CorruptIRPass>());
    pm.run(*m);

    ASSERT_EQ(pm.containedFailures().size(), 2u);
    EXPECT_NE(
        pm.containedFailures()[0].reason.find("verification failed"),
        std::string::npos);
    EXPECT_EQ(m->str(), before);
    verifyOrDie(*m);
}

// --- Localization: -verify-each and -opt-bisect-limit ------------------

TEST(VerifyEach, NamesFirstBreakingPassAndFunction)
{
    auto m = parseProgram();

    PassManager pm; // no sandbox: batch tools want this loud
    pm.setVerifyEach(true);
    pm.add(createMem2RegPass());
    pm.add(std::make_unique<CorruptIRPass>());
    try {
        pm.run(*m);
        FAIL() << "verify-each did not fire";
    } catch (const FatalError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("corrupt-ir"), std::string::npos) << msg;
        EXPECT_NE(msg.find("helper"), std::string::npos) << msg;
    }
}

TEST(OptBisect, BinarySearchPinpointsInjectedPass)
{
    // Reference behaviour with no limit.
    Baseline ref = interpret(*parseProgram());

    // A pipeline with a deterministic miscompile buried in it.
    auto buildPipeline = [](PassManager &pm) {
        pm.add(createMem2RegPass());
        pm.add(createInstCombinePass());
        pm.add(std::make_unique<BreakSemanticsPass>());
        pm.add(createGVNPass());
        pm.add(createADCEPass());
    };

    // Each pass visits helper then main: 10 applications total.
    // runsCorrectly(N) = pipeline truncated at N keeps semantics.
    auto runsCorrectly = [&](int64_t limit) {
        OptBisect::setLimit(limit);
        auto m = parseProgram();
        PassManager pm;
        buildPipeline(pm);
        pm.run(*m);
        Baseline b = interpret(*m);
        return b.value == ref.value && b.output == ref.output;
    };

    const int64_t total = 10;
    ASSERT_TRUE(runsCorrectly(0));
    ASSERT_FALSE(runsCorrectly(total));

    // Classic bisection: find the first application that breaks.
    int64_t lo = 0, hi = total; // lo good, hi bad
    while (hi - lo > 1) {
        int64_t mid = lo + (hi - lo) / 2;
        if (runsCorrectly(mid))
            lo = mid;
        else
            hi = mid;
    }

    // Run once more at the culprit index so the decision log covers
    // it, then name it.
    // The pipeline visits helper before main, so the first breaking
    // application is the injected pass on helper.
    runsCorrectly(hi);
    EXPECT_EQ(OptBisect::description(hi),
              "break-semantics on helper");
    OptBisect::setLimit(-1); // never leak into other tests
}

TEST(OptBisect, DisabledByDefaultAndDeterministic)
{
    OptBisect::setLimit(-1);
    EXPECT_FALSE(OptBisect::enabled());

    // Two identical runs draw identical indices.
    OptBisect::setLimit(3);
    {
        auto m = parseProgram();
        PassManager pm;
        addFunctionPasses(pm, 1);
        pm.run(*m);
    }
    std::string first = OptBisect::description(3);
    int64_t count = OptBisect::count();
    OptBisect::setLimit(3);
    {
        auto m = parseProgram();
        PassManager pm;
        addFunctionPasses(pm, 1);
        pm.run(*m);
    }
    EXPECT_EQ(OptBisect::description(3), first);
    EXPECT_EQ(OptBisect::count(), count);
    EXPECT_NE(first, "");
    OptBisect::setLimit(-1);
}

// --- AnalysisManager preservation audit --------------------------------

TEST(PreservationAudit, CatchesPassLyingAboutDominators)
{
    auto m = parseAssembly(R"(
int %f(bool %c) {
entry:
    br bool %c, label %a, label %b
a:
    ret int 1
b:
    ret int 2
}
)").orDie();
    verifyOrDie(*m);
    Function *f = m->getFunction("f");

    AnalysisManager am;
    am.setAuditPreservation(true);
    am.dominators(*f); // cache the tree the pass will invalidate

    PassManager pm; // no sandbox: a lying pass is a pass bug
    pm.add(std::make_unique<LyingPass>());
    try {
        pm.run(*m, am);
        FAIL() << "preservation audit did not fire";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("lied"),
                  std::string::npos)
            << e.what();
    }
}

TEST(PreservationAudit, HonestPassesAreQuiet)
{
    auto m = parseProgram();
    AnalysisManager am;
    am.setAuditPreservation(true);
    for (const auto &f : m->functions())
        if (!f->isDeclaration())
            am.dominators(*f);
    PassManager pm;
    addFunctionPasses(pm, 2);
    EXPECT_NO_THROW(pm.run(*m, am));
    verifyOrDie(*m);
}

// --- The tier ladder ---------------------------------------------------

TEST(TierLadder, FaultAtO2RetranslatesAtO1)
{
    auto m = parseProgram();
    CodeGenOptions opts;
    opts.optLevel = 2;
    CodeManager cm(*getTarget("sparc"), opts);
    TranslationHooks hooks;
    hooks.extendPipeline = [](PassManager &pm, unsigned level) {
        if (level == 2)
            pm.add(std::make_unique<FaultPass>("helper"));
    };
    cm.setHooks(hooks);

    const Function *helper = m->getFunction("helper");
    const Function *main_fn = m->getFunction("main");
    EXPECT_NE(cm.get(helper), nullptr);
    EXPECT_NE(cm.get(main_fn), nullptr);
    EXPECT_EQ(cm.tierOf(helper), 1); // degraded one rung
    EXPECT_EQ(cm.tierOf(main_fn), 2);
    EXPECT_EQ(cm.tierDowngrades(), 1u);
    EXPECT_FALSE(cm.isInterpreted(helper));
}

TEST(TierLadder, CodegenFaultDegradesToo)
{
    auto m = parseProgram();
    CodeGenOptions opts;
    opts.optLevel = 1;
    CodeManager cm(*getTarget("x86"), opts);
    TranslationHooks hooks;
    hooks.beforeCodegen = [](const Function &f, unsigned level) {
        if (f.name() == "main" && level == 1)
            throw FatalError("injected codegen fault");
    };
    cm.setHooks(hooks);

    EXPECT_NE(cm.get(m->getFunction("main")), nullptr);
    EXPECT_EQ(cm.tierOf(m->getFunction("main")), 0);
    EXPECT_EQ(cm.tierDowngrades(), 1u);
}

TEST(TierLadder, ExhaustedLadderPinsToInterpreter)
{
    auto m = parseProgram();
    uint64_t fallbacks = stats::value("llee.interp_fallbacks");

    CodeGenOptions opts;
    opts.optLevel = 2;
    CodeManager cm(*getTarget("sparc"), opts);
    TranslationHooks hooks;
    hooks.extendPipeline = [](PassManager &pm, unsigned) {
        pm.add(std::make_unique<FaultPass>("helper"));
    };
    cm.setHooks(hooks);

    const Function *helper = m->getFunction("helper");
    EXPECT_EQ(cm.get(helper), nullptr);
    EXPECT_TRUE(cm.isInterpreted(helper));
    EXPECT_EQ(cm.tierDowngrades(), 3u); // O2, O1, O0 all failed
    EXPECT_EQ(stats::value("llee.interp_fallbacks"), fallbacks + 1);
    // Pinned means pinned: a second get() does not retry the ladder.
    EXPECT_EQ(cm.get(helper), nullptr);
    EXPECT_EQ(cm.tierDowngrades(), 3u);
}

TEST(TierLadder, LadderLeavesBytecodeBodyUntouched)
{
    auto m = parseProgram();
    std::string before = m->str();
    CodeGenOptions opts;
    opts.optLevel = 2;
    CodeManager cm(*getTarget("sparc"), opts);
    cm.translateAll(*m);
    // Optimization happened on a scratch body; the persistent
    // representation is untouched.
    EXPECT_EQ(m->str(), before);
}

// --- Interpreter as tier of last resort --------------------------------

TEST(InterpFallback, PinnedCalleeIsInterpretedMidSimulation)
{
    auto m = parseProgram();
    Baseline ref = interpret(*m);

    CodeGenOptions opts;
    CodeManager cm(*getTarget("sparc"), opts);
    TranslationHooks hooks;
    hooks.extendPipeline = [](PassManager &pm, unsigned) {
        pm.add(std::make_unique<FaultPass>("helper"));
    };
    cm.setHooks(hooks);

    ExecutionContext ctx(*m);
    MachineSimulator sim(ctx, cm);
    auto r = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok()) << trapKindName(r.trap);
    EXPECT_EQ(r.value.i, ref.value);
    EXPECT_EQ(ctx.output(), ref.output);
    EXPECT_GT(sim.instructionsInterpreted(), 0u);
    EXPECT_TRUE(cm.isInterpreted(m->getFunction("helper")));
}

TEST(InterpFallback, PinnedEntryFunctionStillRuns)
{
    auto m = parseProgram();
    Baseline ref = interpret(*m);

    CodeGenOptions opts;
    CodeManager cm(*getTarget("x86"), opts);
    TranslationHooks hooks;
    hooks.extendPipeline = [](PassManager &pm, unsigned) {
        pm.add(std::make_unique<FaultPass>()); // every function
    };
    cm.setHooks(hooks);

    ExecutionContext ctx(*m);
    MachineSimulator sim(ctx, cm);
    auto r = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok()) << trapKindName(r.trap);
    EXPECT_EQ(r.value.i, ref.value);
    EXPECT_EQ(ctx.output(), ref.output);
    EXPECT_GT(sim.instructionsInterpreted(), 0u);
}

// --- LLEE end to end ---------------------------------------------------

TEST(LLEELadder, FaultingPassAtO2IsByteIdenticalToBaseline)
{
    auto m = parseProgram();
    auto bytecode = writeBytecode(*m);

    CodeGenOptions opts;
    opts.optLevel = 2;

    LLEE clean(*getTarget("sparc"), nullptr, opts);
    LLEEResult want = clean.execute(bytecode);
    EXPECT_EQ(want.tierDowngrades, 0u);

    LLEE faulty(*getTarget("sparc"), nullptr, opts);
    TranslationHooks hooks;
    hooks.extendPipeline = [](PassManager &pm, unsigned level) {
        if (level == 2)
            pm.add(std::make_unique<FaultPass>("helper"));
    };
    faulty.setHooks(hooks);
    LLEEResult got = faulty.execute(bytecode);

    EXPECT_EQ(got.output, want.output);
    EXPECT_EQ(got.exec.value.i, want.exec.value.i);
    EXPECT_EQ(got.tierDowngrades, 1u);
    EXPECT_EQ(got.functionsInterpreted, 0u);
}

TEST(LLEELadder, AchievedTierIsCachedAcrossRuns)
{
    auto m = parseProgram();
    auto bytecode = writeBytecode(*m);
    Baseline ref = interpret(*m);

    CodeGenOptions opts;
    opts.optLevel = 2;
    MemoryStorage storage;
    TranslationHooks hooks;
    hooks.extendPipeline = [](PassManager &pm, unsigned) {
        pm.add(std::make_unique<FaultPass>("helper")); // all tiers
    };

    LLEE llee(*getTarget("sparc"), &storage, opts);
    llee.setHooks(hooks);

    LLEEResult first = llee.execute(bytecode);
    EXPECT_EQ(first.output, ref.output);
    EXPECT_EQ(first.exec.value.i, ref.value);
    EXPECT_EQ(first.tierDowngrades, 3u);
    EXPECT_EQ(first.functionsInterpreted, 1u);

    // The second run loads the interpreter pin from the envelope
    // cache: no re-walk of the (still faulting) ladder.
    LLEEResult second = llee.execute(bytecode);
    EXPECT_EQ(second.output, ref.output);
    EXPECT_EQ(second.exec.value.i, ref.value);
    EXPECT_EQ(second.tierDowngrades, 0u);
    EXPECT_EQ(second.functionsInterpreted, 1u);
    EXPECT_GE(second.cacheHits, 2u); // helper pin + main code
    EXPECT_EQ(second.cacheMisses, 0u);
}

TEST(LLEELadder, DegradedTierIsCachedAcrossRuns)
{
    auto m = parseProgram();
    auto bytecode = writeBytecode(*m);

    CodeGenOptions opts;
    opts.optLevel = 2;
    MemoryStorage storage;
    TranslationHooks hooks;
    hooks.extendPipeline = [](PassManager &pm, unsigned level) {
        if (level == 2)
            pm.add(std::make_unique<FaultPass>("helper"));
    };

    LLEE llee(*getTarget("sparc"), &storage, opts);
    llee.setHooks(hooks);
    LLEEResult first = llee.execute(bytecode);
    EXPECT_EQ(first.tierDowngrades, 1u);

    LLEEResult second = llee.execute(bytecode);
    EXPECT_EQ(second.tierDowngrades, 0u);
    EXPECT_EQ(second.cacheMisses, 0u);
    EXPECT_EQ(second.output, first.output);
    EXPECT_EQ(second.exec.value.i, first.exec.value.i);
}
