/**
 * @file
 * Live-update tests: epoch-based reclamation of retired bodies and
 * chains (the lists must drain, not leak), epoch pins protecting
 * still-executing bodies, replaceFunctionLive() swapping a function
 * under a running program — including from a second thread while the
 * first executes it — and the recoverable-trap semantics of rejected
 * LLVA intrinsics.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "parser/parser.h"
#include "support/statistic.h"
#include "trace/profile.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

const char *kHotCalls = R"(
internal int %work(int %n) {
entry:
    br label %head
head:
    %i = phi int [ 0, %entry ], [ %i2, %head ]
    %acc = phi int [ 0, %entry ], [ %acc2, %head ]
    %acc2 = add int %acc, %i
    %i2 = add int %i, 1
    %more = setlt int %i2, %n
    br bool %more, label %head, label %out
out:
    ret int %acc2
}
int %main() {
entry:
    br label %loop
loop:
    %j = phi int [ 0, %entry ], [ %j2, %loop ]
    %acc = phi int [ 0, %entry ], [ %acc2, %loop ]
    %w = call int %work(int 100)
    %acc2 = add int %acc, %w
    %j2 = add int %j, 1
    %more = setlt int %j2, 40
    br bool %more, label %loop, label %out
out:
    ret int %acc2
}
)";

constexpr int64_t kMainSum = 198000; // 40 * sum(0..99)

CodeGenOptions
adaptiveOpts(uint64_t watermark = 500)
{
    CodeGenOptions opts;
    opts.optLevel = 2;
    opts.adaptive = true;
    opts.promoteWatermark = watermark;
    return opts;
}

} // namespace

TEST(LiveUpdate, EpochPinsGateReclamation)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    const Function *work = m->getFunction("work");
    CodeManager cm(*getTarget("x86"));

    // No pins: a retired body is reclaimed on the spot.
    ASSERT_NE(cm.get(work), nullptr);
    cm.invalidate(work);
    EXPECT_EQ(cm.retiredBodies(), 0u);
    EXPECT_EQ(cm.reclaimedObjects(), 1u);

    // A pin taken *before* the retirement holds the body alive ...
    ASSERT_NE(cm.get(work), nullptr);
    uint64_t pin = cm.pinEpoch();
    cm.invalidate(work);
    EXPECT_EQ(cm.retiredBodies(), 1u);
    cm.unpinEpoch(pin);
    EXPECT_EQ(cm.retiredBodies(), 0u);
    EXPECT_EQ(cm.reclaimedObjects(), 2u);

    // ... while a pin taken *after* it cannot reference it and
    // does not block reclamation.
    ASSERT_NE(cm.get(work), nullptr);
    uint64_t before = cm.pinEpoch();
    cm.invalidate(work);
    uint64_t after = cm.pinEpoch();
    EXPECT_EQ(cm.retiredBodies(), 1u);
    cm.unpinEpoch(before);
    EXPECT_EQ(cm.retiredBodies(), 0u);
    cm.unpinEpoch(after);
    EXPECT_EQ(cm.reclaimedObjects(), 3u);
}

TEST(LiveUpdate, InvalidatePromoteCyclesDoNotAccumulate)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    const Function *work = m->getFunction("work");

    ExecutionContext ctx(*m);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    EdgeProfile profile;
    cm.setAdaptive(&profile, 500);
    MachineSimulator sim(ctx, cm);
    sim.setProfile(&profile);

    // The adaptive run retires work()'s -O2 body on promotion; the
    // activation's own pin holds it until run() returns, then the
    // unpin drains the lists — nothing outlives the run.
    auto r = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok());
    ASSERT_GE(cm.promotions(), 1u);
    EXPECT_EQ(cm.retiredBodies(), 0u);
    EXPECT_EQ(cm.retiredChainCount(), 0u);
    size_t reclaimedSoFar = cm.reclaimedObjects();
    EXPECT_GE(reclaimedSoFar, 1u);

    // Repeated live replacement must not grow memory monotonically:
    // with no activation pinning, every retirement reclaims
    // immediately.
    for (int i = 0; i < 8; ++i) {
        ASSERT_NE(cm.replaceFunctionLive(work), nullptr);
        EXPECT_EQ(cm.retiredBodies(), 0u) << "cycle " << i;
        EXPECT_EQ(cm.retiredChainCount(), 0u) << "cycle " << i;
        EXPECT_GT(cm.reclaimedObjects(), reclaimedSoFar)
            << "cycle " << i;
        reclaimedSoFar = cm.reclaimedObjects();
    }

    // The gauges surface the churn.
    EXPECT_GE(stats::value("vm.retired_bodies"), 8u);
    EXPECT_GE(stats::value("vm.retired_reclaimed"),
              cm.reclaimedObjects());
    EXPECT_GE(stats::value("vm.live_replacements"), 8u);
}

TEST(LiveUpdate, ReplaceFunctionLiveUnpinsInterpreterPinnedFunction)
{
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    const Function *work = m->getFunction("work");

    ExecutionContext ctx(*m);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    TranslationHooks hooks;
    hooks.beforeCodegen = [](const Function &f, unsigned) {
        if (f.name() == "work")
            throw std::runtime_error("injected codegen fault");
    };
    cm.setHooks(hooks);

    // Every native tier fails: work() is pinned to the interpreter,
    // and the program still runs (tier of last resort).
    ASSERT_EQ(cm.get(work), nullptr);
    ASSERT_TRUE(cm.isInterpreted(work));
    MachineSimulator sim(ctx, cm);
    auto r1 = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(static_cast<int64_t>(r1.value.i), kMainSum);
    EXPECT_GT(sim.instructionsInterpreted(), 0u);

    // A live replacement whose translation now succeeds un-pins it.
    cm.setHooks(TranslationHooks{});
    ASSERT_NE(cm.replaceFunctionLive(work), nullptr);
    EXPECT_FALSE(cm.isInterpreted(work));

    uint64_t interpretedBefore = sim.instructionsInterpreted();
    auto r2 = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(static_cast<int64_t>(r2.value.i), kMainSum);
    EXPECT_EQ(sim.instructionsInterpreted(), interpretedBefore);
}

TEST(LiveUpdate, ConcurrentReplaceWhileExecuting)
{
    // The SMC torture case: one thread runs main() (which calls
    // work() 40 times, promoting it mid-run) while a second thread
    // keeps replacing work()'s translation out from under it. The
    // run must compute the exact quiet-baseline answer, and every
    // retired body must be reclaimed once the activation ends.
    auto m = parseAssembly(kHotCalls).orDie();
    verifyOrDie(*m);
    const Function *work = m->getFunction("work");

    ExecutionContext ctx(*m);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    EdgeProfile profile;
    cm.setAdaptive(&profile, 500);
    MachineSimulator sim(ctx, cm);
    sim.setProfile(&profile);

    std::atomic<bool> done{false};
    std::atomic<size_t> replacements{0};
    std::thread chaos([&] {
        while (!done.load(std::memory_order_relaxed)) {
            if (cm.replaceFunctionLive(work))
                replacements.fetch_add(1,
                                       std::memory_order_relaxed);
            std::this_thread::yield();
        }
    });

    auto r = sim.run(m->getFunction("main"));
    done.store(true, std::memory_order_relaxed);
    chaos.join();

    ASSERT_TRUE(r.ok());
    EXPECT_EQ(static_cast<int64_t>(r.value.i), kMainSum);
    EXPECT_GE(replacements.load(), 1u);
    // The activation's pin is gone and the chaos thread has joined:
    // nothing is left awaiting reclamation.
    EXPECT_EQ(cm.retiredBodies(), 0u);
    EXPECT_EQ(cm.retiredChainCount(), 0u);
}

TEST(LiveUpdate, RejectedSmcReplaceTrapsRecoverably)
{
    // llva.smc.replace.function with an address that names no
    // function must not kill the VM: it raises BadIndirectCall,
    // which dispatches to a registered trap handler like any other
    // recoverable trap, and installs nothing.
    auto m = parseAssembly(R"(
declare void %llva.smc.replace.function(ubyte* %t, ubyte* %r)
declare void %putint(long %v)
internal void %handler(long %trapno, ubyte* %info) {
entry:
    call void %putint(long %trapno)
    ret void
}
internal long %work(long %n) {
entry:
    ret long 5
}
int %main() {
entry:
    %t = cast long 123456 to ubyte*
    %r = cast long (long)* %work to ubyte*
    call void %llva.smc.replace.function(ubyte* %t, ubyte* %r)
    ret int 0
}
)").orDie();
    verifyOrDie(*m);

    uint64_t rejectedBefore = stats::value("vm.intrinsic_rejected");
    std::string expected = std::to_string(
        static_cast<unsigned>(TrapKind::BadIndirectCall));

    {
        ExecutionContext ctx(*m);
        ctx.setPrivileged(true);
        ctx.setTrapHandler(
            static_cast<unsigned>(TrapKind::BadIndirectCall),
            ctx.memory().functionAddress(m->getFunction("handler")));
        Interpreter interp(ctx);
        auto r = interp.run(m->getFunction("main"));
        EXPECT_EQ(r.trap, TrapKind::BadIndirectCall);
        EXPECT_EQ(ctx.output(), expected);
    }
    {
        ExecutionContext ctx(*m);
        ctx.setPrivileged(true);
        ctx.setTrapHandler(
            static_cast<unsigned>(TrapKind::BadIndirectCall),
            ctx.memory().functionAddress(m->getFunction("handler")));
        CodeManager cm(*getTarget("x86"));
        MachineSimulator sim(ctx, cm);
        auto r = sim.run(m->getFunction("main"));
        EXPECT_EQ(r.trap, TrapKind::BadIndirectCall);
        EXPECT_EQ(ctx.output(), expected);
    }

    EXPECT_GE(stats::value("vm.intrinsic_rejected"),
              rejectedBefore + 2);
}
