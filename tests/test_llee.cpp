/**
 * @file
 * LLEE tests (paper Section 4.1): the OS-independent storage API,
 * machine-code serialization ("relocation" on load), offline
 * caching of translations across executions, offline (idle-time)
 * translation, operation without any storage API, staleness
 * detection via content keys, and profile persistence.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bytecode/bytecode.h"
#include "llee/envelope.h"
#include "llee/fault_storage.h"
#include "llee/llee.h"
#include "llee/mcode_io.h"
#include "parser/parser.h"
#include "support/statistic.h"
#include "verifier/verifier.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

const char *kProgram = R"(
declare void %putint(long %v)
internal int %helper(int %x) {
entry:
    %r = mul int %x, 3
    ret int %r
}
int %main() {
entry:
    %a = call int %helper(int 5)
    %b = call int %helper(int 7)
    %s = add int %a, %b
    call void %putint(long 11)
    ret int %s
}
)";

std::vector<uint8_t>
program()
{
    auto m = parseAssembly(kProgram).orDie();
    verifyOrDie(*m);
    return writeBytecode(*m);
}

} // namespace

TEST(Storage, MemoryStorageBasics)
{
    MemoryStorage s;
    EXPECT_TRUE(s.createCache("c"));
    EXPECT_EQ(s.cacheSize("c"), 0u);
    EXPECT_EQ(s.cacheSize("absent"), UINT64_MAX);

    std::vector<uint8_t> data = {1, 2, 3};
    EXPECT_TRUE(s.write("c", "a", data));
    EXPECT_EQ(s.cacheSize("c"), 3u);
    std::vector<uint8_t> back;
    EXPECT_TRUE(s.read("c", "a", back));
    EXPECT_EQ(back, data);
    EXPECT_FALSE(s.read("c", "missing", back));

    uint64_t t1 = s.timestamp("c", "a");
    EXPECT_NE(t1, 0u);
    EXPECT_EQ(s.timestamp("c", "missing"), 0u);
    s.write("c", "a", data);
    EXPECT_GT(s.timestamp("c", "a"), t1); // newer write, newer stamp

    EXPECT_EQ(s.list("c").size(), 1u);
    EXPECT_TRUE(s.remove("c", "a"));
    EXPECT_FALSE(s.remove("c", "a")); // already gone
    EXPECT_EQ(s.timestamp("c", "a"), 0u);
    EXPECT_TRUE(s.deleteCache("c"));
    EXPECT_EQ(s.cacheSize("c"), UINT64_MAX);
}

TEST(Storage, FileStorageBasics)
{
    std::string root =
        ::testing::TempDir() + "/llva_storage_test";
    FileStorage s(root);
    EXPECT_TRUE(s.createCache("c"));
    std::vector<uint8_t> data = {9, 8, 7, 6};
    EXPECT_TRUE(s.write("c", "prog.fn.x86", data));
    std::vector<uint8_t> back;
    EXPECT_TRUE(s.read("c", "prog.fn.x86", back));
    EXPECT_EQ(back, data);
    EXPECT_NE(s.timestamp("c", "prog.fn.x86"), 0u);
    EXPECT_EQ(s.cacheSize("c"), 4u);
    EXPECT_TRUE(s.remove("c", "prog.fn.x86"));
    EXPECT_EQ(s.timestamp("c", "prog.fn.x86"), 0u);
    EXPECT_TRUE(s.deleteCache("c"));
}

TEST(Storage, FileStorageIgnoresTornTempFiles)
{
    // A crash mid-write leaves only a "<name>.tmp" partial; the
    // published entry is written via temp-file + fsync + rename, so
    // readers never see torn bytes and orphaned temps are invisible.
    std::string root = ::testing::TempDir() + "/llva_torn_test";
    std::filesystem::remove_all(root);
    FileStorage s(root);
    ASSERT_TRUE(s.createCache("c"));
    {
        std::ofstream torn(root + "/c/entry.tmp", std::ios::binary);
        torn << "partial-garbage";
    }
    EXPECT_TRUE(s.list("c").empty());
    EXPECT_EQ(s.cacheSize("c"), 0u);

    // The next write of the same entry replaces the orphan and
    // publishes atomically.
    std::vector<uint8_t> data = {1, 2, 3, 4, 5};
    EXPECT_TRUE(s.write("c", "entry", data));
    std::vector<uint8_t> back;
    EXPECT_TRUE(s.read("c", "entry", back));
    EXPECT_EQ(back, data);
    EXPECT_EQ(s.list("c").size(), 1u);
    EXPECT_FALSE(
        std::filesystem::exists(root + "/c/entry.tmp"));
    std::filesystem::remove_all(root);
}

TEST(Storage, FileStorageFailsSoftlyOnBadRoot)
{
    // Root whose parent is a regular file: every directory creation
    // fails. The API must report false, never throw.
    std::string blocker = ::testing::TempDir() + "/llva_blocker";
    std::filesystem::remove_all(blocker);
    {
        std::ofstream f(blocker);
        f << "x";
    }
    FileStorage s(blocker + "/sub");
    EXPECT_FALSE(s.createCache("c"));
    EXPECT_FALSE(s.write("c", "a", {1, 2, 3}));
    std::vector<uint8_t> back;
    EXPECT_FALSE(s.read("c", "a", back));
    EXPECT_EQ(s.timestamp("c", "a"), 0u);
    EXPECT_EQ(s.cacheSize("c"), UINT64_MAX);
    EXPECT_TRUE(s.list("c").empty());
    EXPECT_FALSE(s.remove("c", "a"));
    std::filesystem::remove_all(blocker);
}

TEST(Storage, FileStorageRecreatesDeletedCacheDirOnWrite)
{
    std::string root = ::testing::TempDir() + "/llva_recreate_test";
    std::filesystem::remove_all(root);
    FileStorage s(root);
    ASSERT_TRUE(s.createCache("c"));
    std::filesystem::remove_all(root); // rug pulled
    EXPECT_TRUE(s.write("c", "a", {7, 8}));
    std::vector<uint8_t> back;
    EXPECT_TRUE(s.read("c", "a", back));
    EXPECT_EQ(back, (std::vector<uint8_t>{7, 8}));
    std::filesystem::remove_all(root);
}

TEST(MCodeIO, RoundTripsTranslation)
{
    auto m = parseAssembly(kProgram).orDie();
    Function *f = m->getFunction("helper");
    auto mf = translateFunction(*f, *getTarget("sparc"));
    auto bytes = writeMachineFunction(*mf);
    auto back = readMachineFunction(bytes, *m, f).orDie();

    EXPECT_EQ(back->frameSize(), mf->frameSize());
    EXPECT_EQ(back->blocks().size(), mf->blocks().size());
    EXPECT_EQ(back->instructionCount(), mf->instructionCount());
    // Deep equality: re-serialization is byte-identical.
    EXPECT_EQ(writeMachineFunction(*back), bytes);
}

TEST(MCodeIO, RoundTripsSuccessorListLongerThanBlockList)
{
    // A folded multiway compare chain gives one block more successor
    // entries than the function has blocks — the same target listed
    // once per arm (197.parser's digit dispatch: 12 successors over
    // 11 blocks). The reader used to treat successor-count >
    // block-count as a corrupt length field and reject the valid
    // entry at load time.
    auto m = parseAssembly(kProgram).orDie();
    Function *f = m->getFunction("helper");
    auto mf = std::make_unique<MachineFunction>(f, "x86");
    auto *dispatch = mf->createBlock("dispatch");
    auto *hit = mf->createBlock("hit");
    auto *miss = mf->createBlock("miss");
    for (int i = 0; i < 10; ++i)
        dispatch->successors().push_back(hit);
    dispatch->successors().push_back(miss);
    ASSERT_GT(dispatch->successors().size(), mf->blocks().size());

    auto bytes = writeMachineFunction(*mf);
    auto back = readMachineFunction(bytes, *m, f).orDie();
    ASSERT_EQ(back->blocks().size(), 3u);
    EXPECT_EQ(back->blocks()[0]->successors().size(), 11u);
    EXPECT_EQ(writeMachineFunction(*back), bytes);
}

TEST(MCodeIO, CachedCodeStillRuns)
{
    auto m = parseAssembly(kProgram).orDie();
    verifyOrDie(*m);
    Target &t = *getTarget("x86");

    // Translate everything, serialize, reload into a fresh manager.
    CodeManager cm1(t);
    cm1.translateAll(*m);
    CodeManager cm2(t);
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        auto bytes = writeMachineFunction(*cm1.get(f.get()));
        cm2.install(f.get(),
                    readMachineFunction(bytes, *m, f.get()).orDie());
    }
    ExecutionContext ctx(*m);
    MachineSimulator sim(ctx, cm2);
    auto r = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(static_cast<int64_t>(r.value.i), 36);
    EXPECT_EQ(cm2.functionsTranslated(), 0u); // all from "cache"
}

TEST(MCodeIO, RejectsWrongFunction)
{
    auto m = parseAssembly(kProgram).orDie();
    auto mf = translateFunction(*m->getFunction("helper"),
                                *getTarget("sparc"));
    auto bytes = writeMachineFunction(*mf);
    auto r = readMachineFunction(bytes, *m, m->getFunction("main"));
    ASSERT_FALSE(r.ok());
    EXPECT_NE(r.error().message().find("helper"), std::string::npos);
}

TEST(MCodeIO, EveryCorruptionRejectedOrDecodesNoCrash)
{
    // The mcode reader sits *behind* the envelope checksum in
    // production, but must stand alone: no damaged input may crash,
    // leak, or escape as an exception. (Unlike the bytecode reader
    // there is no checksum here, so some flips decode successfully —
    // that is fine; the envelope is the integrity layer.)
    auto m = parseAssembly(kProgram).orDie();
    Function *f = m->getFunction("helper");
    auto mf = translateFunction(*f, *getTarget("sparc"));
    auto bytes = writeMachineFunction(*mf);
    for (size_t i = 0; i < bytes.size(); ++i) {
        for (uint8_t delta : {uint8_t(0x01), uint8_t(0xff)}) {
            std::vector<uint8_t> bad = bytes;
            bad[i] ^= delta;
            auto r = readMachineFunction(bad, *m, f);
            (void)r; // Error or a decodable function — never a throw
        }
    }
    for (size_t len = 0; len < bytes.size(); ++len) {
        std::vector<uint8_t> bad(bytes.begin(), bytes.begin() + len);
        auto r = readMachineFunction(bad, *m, f);
        EXPECT_FALSE(r.ok()) << "truncation to " << len;
    }
}

TEST(LLEE, ColdRunTranslatesWarmRunHitsCache)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);

    LLEEResult cold = llee.execute(bc);
    ASSERT_TRUE(cold.exec.ok());
    EXPECT_EQ(static_cast<int64_t>(cold.exec.value.i), 36);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, 2u); // main + helper
    EXPECT_EQ(cold.functionsTranslatedOnline, 2u);

    LLEEResult warm = llee.execute(bc);
    ASSERT_TRUE(warm.exec.ok());
    EXPECT_EQ(warm.exec.value.i, cold.exec.value.i);
    EXPECT_EQ(warm.output, cold.output);
    EXPECT_EQ(warm.cacheHits, 2u);
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(warm.functionsTranslatedOnline, 0u);
}

TEST(LLEE, WorksWithoutStorageAPI)
{
    // "they are strictly optional and the system will operate
    // correctly in their absence."
    auto bc = program();
    LLEE llee(*getTarget("x86"), nullptr);
    LLEEResult r1 = llee.execute(bc);
    LLEEResult r2 = llee.execute(bc);
    ASSERT_TRUE(r1.exec.ok());
    EXPECT_EQ(r1.exec.value.i, r2.exec.value.i);
    // Every run translates online (the DAISY/Crusoe situation).
    EXPECT_EQ(r2.functionsTranslatedOnline, 2u);
    EXPECT_EQ(r2.cacheHits, 0u);
}

TEST(LLEE, OfflineTranslationPrimesTheCache)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);

    // Idle-time translation without execution.
    EXPECT_EQ(llee.offlineTranslate(bc), 2u);
    EXPECT_EQ(llee.offlineTranslate(bc), 0u); // already current

    LLEEResult run = llee.execute(bc);
    ASSERT_TRUE(run.exec.ok());
    EXPECT_EQ(run.cacheHits, 2u);
    EXPECT_EQ(run.functionsTranslatedOnline, 0u);
}

TEST(LLEE, OfflineTranslationSkipsCurrentEntries)
{
    // Regression test for §4.2 incremental retranslation: an entry
    // whose storage timestamp is already set is current (the content
    // hash in its key guarantees validity) and must be skipped, not
    // retranslated or overwritten.
    auto bc = program();
    auto m = readBytecode(bc).orDie();
    MemoryStorage storage;
    Target &t = *getTarget("sparc");
    LLEE llee(t, &storage);

    // Pre-populate main's slot with sentinel bytes; its timestamp is
    // now nonzero, so offline translation must leave it alone.
    std::string mainKey = LLEE::translationKey(
        LLEE::programKey(bc), *m->getFunction("main"), t, {});
    std::vector<uint8_t> sentinel = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(storage.createCache("llee-native-cache"));
    ASSERT_TRUE(storage.write("llee-native-cache", mainKey, sentinel));
    uint64_t stamp = storage.timestamp("llee-native-cache", mainKey);
    ASSERT_NE(stamp, 0u);

    // Only %helper is missing, so exactly one function translates.
    EXPECT_EQ(llee.offlineTranslate(bc), 1u);

    std::vector<uint8_t> back;
    ASSERT_TRUE(storage.read("llee-native-cache", mainKey, back));
    EXPECT_EQ(back, sentinel); // untouched
    EXPECT_EQ(storage.timestamp("llee-native-cache", mainKey), stamp);

    // A second pass now finds every entry current and does nothing.
    EXPECT_EQ(llee.offlineTranslate(bc), 0u);
}

TEST(LLEE, ModifiedProgramMissesStaleCache)
{
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);
    auto bc1 = program();
    llee.execute(bc1);

    // A different program (content hash differs) must not reuse the
    // old translations — the timestamp/validity check of §4.1.
    auto m = parseAssembly(R"(
int %main() {
entry:
    ret int 1
}
)").orDie();
    auto bc2 = writeBytecode(*m);
    LLEEResult r = llee.execute(bc2);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(static_cast<int64_t>(r.exec.value.i), 1);
}

TEST(LLEE, SeparateCachesPerTargetAndAllocator)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE sparc(*getTarget("sparc"), &storage);
    sparc.execute(bc);

    // Same storage, different target: no sharing.
    LLEE x86(*getTarget("x86"), &storage);
    LLEEResult r = x86.execute(bc);
    EXPECT_EQ(r.cacheHits, 0u);

    // Same target, different allocator: no sharing either.
    CodeGenOptions local;
    local.allocator = CodeGenOptions::Allocator::Local;
    LLEE sparcLocal(*getTarget("sparc"), &storage, local);
    LLEEResult r2 = sparcLocal.execute(bc);
    EXPECT_EQ(r2.cacheHits, 0u);
    EXPECT_EQ(r2.exec.value.i, r.exec.value.i);
}

TEST(LLEE, CachedAndFreshRunsAgreeOnWorkStatistics)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE llee(*getTarget("x86"), &storage);
    LLEEResult cold = llee.execute(bc);
    LLEEResult warm = llee.execute(bc);
    // Same machine instructions executed either way.
    EXPECT_EQ(cold.machineInstructionsExecuted,
              warm.machineInstructionsExecuted);
    EXPECT_EQ(cold.output, warm.output);
}

TEST(LLEE, ProfilePersistence)
{
    auto m = parseAssembly(kProgram).orDie();
    verifyOrDie(*m);
    auto bc = writeBytecode(*m);

    EdgeProfile profile;
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    interp.setProfile(&profile);
    interp.run(m->getFunction("main"));
    EXPECT_FALSE(profile.blocks.empty());

    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);
    EXPECT_TRUE(llee.writeProfile(bc, profile, *m));
    std::vector<uint8_t> bytes;
    EXPECT_TRUE(storage.read("llee-native-cache",
                             LLEE::programKey(bc) + ".profile",
                             bytes));
    EXPECT_FALSE(bytes.empty());
}

// --- Trust boundary: the cache is untrusted input --------------------

namespace {

constexpr const char *kCache = "llee-native-cache";

/** Cache entry names of translations (profiles excluded). */
std::vector<std::string>
translationEntries(StorageAPI &s)
{
    std::vector<std::string> out;
    for (const std::string &name : s.list(kCache))
        if (name.find(".profile") == std::string::npos)
            out.push_back(name);
    return out;
}

} // namespace

TEST(Envelope, SealOpenRoundTrip)
{
    TranslationKey key;
    key.targetName = "sparc";
    key.allocator = 1;
    key.coalesce = 1;
    key.sourceHash = 0xabcdef;
    std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
    auto env = sealTranslation(key, payload);

    std::vector<uint8_t> back;
    EXPECT_EQ(openTranslation(env, key, back), EnvelopeStatus::Ok);
    EXPECT_EQ(back, payload);

    // Any single-byte damage -> Corrupt, payload untouched.
    for (size_t i = 0; i < env.size(); ++i) {
        auto bad = env;
        bad[i] ^= 0x40;
        std::vector<uint8_t> out = {9};
        EXPECT_EQ(openTranslation(bad, key, out),
                  EnvelopeStatus::Corrupt)
            << "byte " << i;
        EXPECT_EQ(out, (std::vector<uint8_t>{9}));
    }
    // Any truncation -> Corrupt.
    for (size_t len = 0; len < env.size(); ++len) {
        std::vector<uint8_t> bad(env.begin(), env.begin() + len);
        std::vector<uint8_t> out;
        EXPECT_EQ(openTranslation(bad, key, out),
                  EnvelopeStatus::Corrupt)
            << "length " << len;
    }

    // Intact but mismatched key -> Incompatible / Stale.
    TranslationKey other = key;
    other.targetName = "x86";
    std::vector<uint8_t> out;
    EXPECT_EQ(openTranslation(env, other, out),
              EnvelopeStatus::Incompatible);
    other = key;
    other.allocator = 0;
    EXPECT_EQ(openTranslation(env, other, out),
              EnvelopeStatus::Incompatible);
    other = key;
    other.sourceHash = 0x1234;
    EXPECT_EQ(openTranslation(env, other, out),
              EnvelopeStatus::Stale);

    EXPECT_EQ(inspectTranslation(env), EnvelopeStatus::Ok);
    TranslationKey seen;
    inspectTranslation(env, &seen);
    EXPECT_EQ(seen.targetName, "sparc");
    EXPECT_EQ(seen.sourceHash, 0xabcdefu);
}

TEST(LLEE, CorruptedCacheEntryIsEvictedAndRepaired)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);
    llee.execute(bc);
    auto entries = translationEntries(storage);
    ASSERT_EQ(entries.size(), 2u);

    // Flip a byte in the middle of one cached translation.
    std::vector<uint8_t> bytes;
    ASSERT_TRUE(storage.read(kCache, entries[0], bytes));
    bytes[bytes.size() / 2] ^= 0x10;
    ASSERT_TRUE(storage.write(kCache, entries[0], bytes));

    uint64_t corruptBefore = stats::value("llee.cache_corrupt");
    LLEEResult r = llee.execute(bc);
    ASSERT_TRUE(r.exec.ok());
    EXPECT_EQ(static_cast<int64_t>(r.exec.value.i), 36);
    EXPECT_EQ(r.cacheHits, 1u);
    EXPECT_EQ(r.cacheMisses, 1u);
    EXPECT_EQ(r.cacheInvalid, 1u);
    EXPECT_EQ(stats::value("llee.cache_corrupt"), corruptBefore + 1);

    // The damaged entry was evicted and rewritten: full hit now.
    LLEEResult healed = llee.execute(bc);
    EXPECT_EQ(healed.cacheHits, 2u);
    EXPECT_EQ(healed.cacheInvalid, 0u);
    EXPECT_EQ(static_cast<int64_t>(healed.exec.value.i), 36);
}

TEST(LLEE, TruncatedCacheEntryIsEvictedAndRepaired)
{
    // A torn write that somehow landed (storage without atomic
    // publish): the envelope rejects it, LLEE retranslates.
    auto bc = program();
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);
    llee.execute(bc);
    auto entries = translationEntries(storage);
    ASSERT_EQ(entries.size(), 2u);
    for (const auto &name : entries) {
        std::vector<uint8_t> bytes;
        ASSERT_TRUE(storage.read(kCache, name, bytes));
        bytes.resize(bytes.size() / 3);
        ASSERT_TRUE(storage.write(kCache, name, bytes));
    }

    LLEEResult r = llee.execute(bc);
    ASSERT_TRUE(r.exec.ok());
    EXPECT_EQ(static_cast<int64_t>(r.exec.value.i), 36);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(r.cacheInvalid, 2u);
    LLEEResult healed = llee.execute(bc);
    EXPECT_EQ(healed.cacheHits, 2u);
}

TEST(LLEE, IncompatibleAndStaleEntriesAreRejected)
{
    auto bc = program();
    auto m = readBytecode(bc).orDie();
    MemoryStorage storage;
    Target &t = *getTarget("sparc");
    LLEE llee(t, &storage);

    // Plant intact envelopes under main's key whose compatibility
    // keys are wrong: one from an "other translator" (allocator
    // byte differs), one derived from different source bytecode.
    std::string mainKey = LLEE::translationKey(
        LLEE::programKey(bc), *m->getFunction("main"), t, {});
    ASSERT_TRUE(storage.createCache(kCache));

    TranslationKey alien;
    alien.targetName = "sparc";
    alien.allocator = 0x7f; // no such configuration
    alien.coalesce = 1;
    std::vector<uint8_t> payload = {1, 2, 3};
    ASSERT_TRUE(storage.write(kCache, mainKey,
                              sealTranslation(alien, payload)));

    uint64_t incompatBefore =
        stats::value("llee.cache_incompatible");
    LLEEResult r1 = llee.execute(bc);
    ASSERT_TRUE(r1.exec.ok());
    EXPECT_EQ(static_cast<int64_t>(r1.exec.value.i), 36);
    EXPECT_GE(r1.cacheInvalid, 1u);
    EXPECT_EQ(stats::value("llee.cache_incompatible"),
              incompatBefore + 1);

    // Now a stale one: right configuration, wrong source hash.
    CodeGenOptions defaults;
    TranslationKey stale;
    stale.targetName = "sparc";
    stale.allocator = static_cast<uint8_t>(defaults.allocator);
    stale.coalesce = defaults.coalesce ? 1 : 0;
    stale.sourceHash = 0xdeadbeef; // not this program
    ASSERT_TRUE(storage.write(kCache, mainKey,
                              sealTranslation(stale, payload)));
    uint64_t staleBefore = stats::value("llee.cache_stale");
    LLEEResult r2 = llee.execute(bc);
    ASSERT_TRUE(r2.exec.ok());
    EXPECT_EQ(static_cast<int64_t>(r2.exec.value.i), 36);
    EXPECT_EQ(stats::value("llee.cache_stale"), staleBefore + 1);
}

TEST(LLEE, CrossTargetCacheEntryIsIncompatibleNotCorrupt)
{
    // A translation cached for one I-ISA planted under the storage
    // key of another must classify as Incompatible (the key's
    // targetName protects it), NOT Corrupt: the envelope is intact,
    // it just encodes a different machine's opcodes. It is evicted
    // and retranslated without touching the corruption statistic.
    auto bc = program();
    auto m = readBytecode(bc).orDie();
    Target &sparc = *getTarget("sparc");
    Target &riscv = *getTarget("riscv");

    // Populate a cache with genuine sparc translations.
    MemoryStorage sparcStore;
    LLEE sparcLLEE(sparc, &sparcStore);
    ASSERT_TRUE(sparcLLEE.execute(bc).exec.ok());
    std::string sparcKey = LLEE::translationKey(
        LLEE::programKey(bc), *m->getFunction("main"), sparc, {});
    std::vector<uint8_t> env;
    ASSERT_TRUE(sparcStore.read(kCache, sparcKey, env));

    // Plant the sparc envelope where the riscv configuration will
    // look for main.
    std::string riscvKey = LLEE::translationKey(
        LLEE::programKey(bc), *m->getFunction("main"), riscv, {});
    MemoryStorage planted;
    ASSERT_TRUE(planted.createCache(kCache));
    ASSERT_TRUE(planted.write(kCache, riscvKey, env));

    uint64_t corruptBefore = stats::value("llee.cache_corrupt");
    uint64_t incompatBefore =
        stats::value("llee.cache_incompatible");
    LLEE riscvLLEE(riscv, &planted);
    LLEEResult r = riscvLLEE.execute(bc);
    ASSERT_TRUE(r.exec.ok());
    EXPECT_EQ(static_cast<int64_t>(r.exec.value.i), 36);
    EXPECT_GE(r.cacheInvalid, 1u);
    EXPECT_EQ(stats::value("llee.cache_corrupt"), corruptBefore);
    EXPECT_EQ(stats::value("llee.cache_incompatible"),
              incompatBefore + 1);

    // The foreign entry was evicted and replaced by a riscv
    // translation: clean hits from here on.
    LLEEResult healed = riscvLLEE.execute(bc);
    ASSERT_TRUE(healed.exec.ok());
    EXPECT_EQ(healed.cacheHits, 2u);
    EXPECT_EQ(healed.cacheInvalid, 0u);
    EXPECT_EQ(static_cast<int64_t>(healed.exec.value.i), 36);
}

TEST(LLEE, DeadStorageDegradesToNoStorageBehaviour)
{
    // failRate 1.0: every storage call fails. Must behave exactly
    // like the no-storage configuration — correct output, online
    // translation every run, no crash.
    auto bc = program();
    LLEE baseline(*getTarget("sparc"), nullptr);
    LLEEResult want = baseline.execute(bc);

    MemoryStorage inner;
    FaultConfig cfg;
    cfg.failRate = 1.0;
    FaultInjectingStorage dead(inner, cfg);
    LLEE llee(*getTarget("sparc"), &dead);
    for (int run = 0; run < 2; ++run) {
        LLEEResult r = llee.execute(bc);
        ASSERT_TRUE(r.exec.ok());
        EXPECT_EQ(r.exec.value.i, want.exec.value.i);
        EXPECT_EQ(r.output, want.output);
        EXPECT_EQ(r.cacheHits, 0u);
        EXPECT_EQ(r.functionsTranslatedOnline, 2u);
    }
    EXPECT_GT(dead.opsFailed(), 0u);
}

TEST(LLEE, MidWriteCrashSimulationOnDisk)
{
    // FileStorage end-to-end: a run populates the cache, then a
    // "crash" leaves a torn temp file beside a valid entry. The
    // next run must ignore the orphan and still hit both entries.
    std::string root = ::testing::TempDir() + "/llva_llee_crash_test";
    std::filesystem::remove_all(root);
    {
        FileStorage storage(root);
        LLEE llee(*getTarget("x86"), &storage);
        auto bc = program();
        llee.execute(bc);

        auto entries = translationEntries(storage);
        ASSERT_EQ(entries.size(), 2u);
        {
            std::ofstream torn(root + "/" + std::string(kCache) +
                                   "/" + entries[0] + ".tmp",
                               std::ios::binary);
            torn << "torn-mid-write";
        }
        LLEEResult r = llee.execute(bc);
        ASSERT_TRUE(r.exec.ok());
        EXPECT_EQ(static_cast<int64_t>(r.exec.value.i), 36);
        EXPECT_EQ(r.cacheHits, 2u);
        EXPECT_EQ(r.cacheInvalid, 0u);
    }
    std::filesystem::remove_all(root);
}
