/**
 * @file
 * LLEE tests (paper Section 4.1): the OS-independent storage API,
 * machine-code serialization ("relocation" on load), offline
 * caching of translations across executions, offline (idle-time)
 * translation, operation without any storage API, staleness
 * detection via content keys, and profile persistence.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "llee/llee.h"
#include "llee/mcode_io.h"
#include "parser/parser.h"
#include "verifier/verifier.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

const char *kProgram = R"(
declare void %putint(long %v)
internal int %helper(int %x) {
entry:
    %r = mul int %x, 3
    ret int %r
}
int %main() {
entry:
    %a = call int %helper(int 5)
    %b = call int %helper(int 7)
    %s = add int %a, %b
    call void %putint(long 11)
    ret int %s
}
)";

std::vector<uint8_t>
program()
{
    auto m = parseAssembly(kProgram);
    verifyOrDie(*m);
    return writeBytecode(*m);
}

} // namespace

TEST(Storage, MemoryStorageBasics)
{
    MemoryStorage s;
    EXPECT_TRUE(s.createCache("c"));
    EXPECT_EQ(s.cacheSize("c"), 0u);
    EXPECT_EQ(s.cacheSize("absent"), UINT64_MAX);

    std::vector<uint8_t> data = {1, 2, 3};
    EXPECT_TRUE(s.write("c", "a", data));
    EXPECT_EQ(s.cacheSize("c"), 3u);
    std::vector<uint8_t> back;
    EXPECT_TRUE(s.read("c", "a", back));
    EXPECT_EQ(back, data);
    EXPECT_FALSE(s.read("c", "missing", back));

    uint64_t t1 = s.timestamp("c", "a");
    EXPECT_NE(t1, 0u);
    EXPECT_EQ(s.timestamp("c", "missing"), 0u);
    s.write("c", "a", data);
    EXPECT_GT(s.timestamp("c", "a"), t1); // newer write, newer stamp

    EXPECT_EQ(s.list("c").size(), 1u);
    EXPECT_TRUE(s.deleteCache("c"));
    EXPECT_EQ(s.cacheSize("c"), UINT64_MAX);
}

TEST(Storage, FileStorageBasics)
{
    std::string root =
        ::testing::TempDir() + "/llva_storage_test";
    FileStorage s(root);
    EXPECT_TRUE(s.createCache("c"));
    std::vector<uint8_t> data = {9, 8, 7, 6};
    EXPECT_TRUE(s.write("c", "prog.fn.x86", data));
    std::vector<uint8_t> back;
    EXPECT_TRUE(s.read("c", "prog.fn.x86", back));
    EXPECT_EQ(back, data);
    EXPECT_NE(s.timestamp("c", "prog.fn.x86"), 0u);
    EXPECT_EQ(s.cacheSize("c"), 4u);
    EXPECT_TRUE(s.deleteCache("c"));
}

TEST(MCodeIO, RoundTripsTranslation)
{
    auto m = parseAssembly(kProgram);
    Function *f = m->getFunction("helper");
    auto mf = translateFunction(*f, *getTarget("sparc"));
    auto bytes = writeMachineFunction(*mf);
    auto back = readMachineFunction(bytes, *m, f);

    EXPECT_EQ(back->frameSize(), mf->frameSize());
    EXPECT_EQ(back->blocks().size(), mf->blocks().size());
    EXPECT_EQ(back->instructionCount(), mf->instructionCount());
    // Deep equality: re-serialization is byte-identical.
    EXPECT_EQ(writeMachineFunction(*back), bytes);
}

TEST(MCodeIO, CachedCodeStillRuns)
{
    auto m = parseAssembly(kProgram);
    verifyOrDie(*m);
    Target &t = *getTarget("x86");

    // Translate everything, serialize, reload into a fresh manager.
    CodeManager cm1(t);
    cm1.translateAll(*m);
    CodeManager cm2(t);
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        auto bytes = writeMachineFunction(*cm1.get(f.get()));
        cm2.install(f.get(),
                    readMachineFunction(bytes, *m, f.get()));
    }
    ExecutionContext ctx(*m);
    MachineSimulator sim(ctx, cm2);
    auto r = sim.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(static_cast<int64_t>(r.value.i), 36);
    EXPECT_EQ(cm2.functionsTranslated(), 0u); // all from "cache"
}

TEST(MCodeIO, RejectsWrongFunction)
{
    auto m = parseAssembly(kProgram);
    auto mf = translateFunction(*m->getFunction("helper"),
                                *getTarget("sparc"));
    auto bytes = writeMachineFunction(*mf);
    EXPECT_THROW(
        readMachineFunction(bytes, *m, m->getFunction("main")),
        FatalError);
}

TEST(LLEE, ColdRunTranslatesWarmRunHitsCache)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);

    LLEEResult cold = llee.execute(bc);
    ASSERT_TRUE(cold.exec.ok());
    EXPECT_EQ(static_cast<int64_t>(cold.exec.value.i), 36);
    EXPECT_EQ(cold.cacheHits, 0u);
    EXPECT_EQ(cold.cacheMisses, 2u); // main + helper
    EXPECT_EQ(cold.functionsTranslatedOnline, 2u);

    LLEEResult warm = llee.execute(bc);
    ASSERT_TRUE(warm.exec.ok());
    EXPECT_EQ(warm.exec.value.i, cold.exec.value.i);
    EXPECT_EQ(warm.output, cold.output);
    EXPECT_EQ(warm.cacheHits, 2u);
    EXPECT_EQ(warm.cacheMisses, 0u);
    EXPECT_EQ(warm.functionsTranslatedOnline, 0u);
}

TEST(LLEE, WorksWithoutStorageAPI)
{
    // "they are strictly optional and the system will operate
    // correctly in their absence."
    auto bc = program();
    LLEE llee(*getTarget("x86"), nullptr);
    LLEEResult r1 = llee.execute(bc);
    LLEEResult r2 = llee.execute(bc);
    ASSERT_TRUE(r1.exec.ok());
    EXPECT_EQ(r1.exec.value.i, r2.exec.value.i);
    // Every run translates online (the DAISY/Crusoe situation).
    EXPECT_EQ(r2.functionsTranslatedOnline, 2u);
    EXPECT_EQ(r2.cacheHits, 0u);
}

TEST(LLEE, OfflineTranslationPrimesTheCache)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);

    // Idle-time translation without execution.
    EXPECT_EQ(llee.offlineTranslate(bc), 2u);
    EXPECT_EQ(llee.offlineTranslate(bc), 0u); // already current

    LLEEResult run = llee.execute(bc);
    ASSERT_TRUE(run.exec.ok());
    EXPECT_EQ(run.cacheHits, 2u);
    EXPECT_EQ(run.functionsTranslatedOnline, 0u);
}

TEST(LLEE, OfflineTranslationSkipsCurrentEntries)
{
    // Regression test for §4.2 incremental retranslation: an entry
    // whose storage timestamp is already set is current (the content
    // hash in its key guarantees validity) and must be skipped, not
    // retranslated or overwritten.
    auto bc = program();
    auto m = readBytecode(bc);
    MemoryStorage storage;
    Target &t = *getTarget("sparc");
    LLEE llee(t, &storage);

    // Pre-populate main's slot with sentinel bytes; its timestamp is
    // now nonzero, so offline translation must leave it alone.
    std::string mainKey = LLEE::translationKey(
        LLEE::programKey(bc), *m->getFunction("main"), t, {});
    std::vector<uint8_t> sentinel = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_TRUE(storage.createCache("llee-native-cache"));
    ASSERT_TRUE(storage.write("llee-native-cache", mainKey, sentinel));
    uint64_t stamp = storage.timestamp("llee-native-cache", mainKey);
    ASSERT_NE(stamp, 0u);

    // Only %helper is missing, so exactly one function translates.
    EXPECT_EQ(llee.offlineTranslate(bc), 1u);

    std::vector<uint8_t> back;
    ASSERT_TRUE(storage.read("llee-native-cache", mainKey, back));
    EXPECT_EQ(back, sentinel); // untouched
    EXPECT_EQ(storage.timestamp("llee-native-cache", mainKey), stamp);

    // A second pass now finds every entry current and does nothing.
    EXPECT_EQ(llee.offlineTranslate(bc), 0u);
}

TEST(LLEE, ModifiedProgramMissesStaleCache)
{
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);
    auto bc1 = program();
    llee.execute(bc1);

    // A different program (content hash differs) must not reuse the
    // old translations — the timestamp/validity check of §4.1.
    auto m = parseAssembly(R"(
int %main() {
entry:
    ret int 1
}
)");
    auto bc2 = writeBytecode(*m);
    LLEEResult r = llee.execute(bc2);
    EXPECT_EQ(r.cacheHits, 0u);
    EXPECT_EQ(static_cast<int64_t>(r.exec.value.i), 1);
}

TEST(LLEE, SeparateCachesPerTargetAndAllocator)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE sparc(*getTarget("sparc"), &storage);
    sparc.execute(bc);

    // Same storage, different target: no sharing.
    LLEE x86(*getTarget("x86"), &storage);
    LLEEResult r = x86.execute(bc);
    EXPECT_EQ(r.cacheHits, 0u);

    // Same target, different allocator: no sharing either.
    CodeGenOptions local;
    local.allocator = CodeGenOptions::Allocator::Local;
    LLEE sparcLocal(*getTarget("sparc"), &storage, local);
    LLEEResult r2 = sparcLocal.execute(bc);
    EXPECT_EQ(r2.cacheHits, 0u);
    EXPECT_EQ(r2.exec.value.i, r.exec.value.i);
}

TEST(LLEE, CachedAndFreshRunsAgreeOnWorkStatistics)
{
    auto bc = program();
    MemoryStorage storage;
    LLEE llee(*getTarget("x86"), &storage);
    LLEEResult cold = llee.execute(bc);
    LLEEResult warm = llee.execute(bc);
    // Same machine instructions executed either way.
    EXPECT_EQ(cold.machineInstructionsExecuted,
              warm.machineInstructionsExecuted);
    EXPECT_EQ(cold.output, warm.output);
}

TEST(LLEE, ProfilePersistence)
{
    auto m = parseAssembly(kProgram);
    verifyOrDie(*m);
    auto bc = writeBytecode(*m);

    EdgeProfile profile;
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    interp.setProfile(&profile);
    interp.run(m->getFunction("main"));
    EXPECT_FALSE(profile.blocks.empty());

    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);
    EXPECT_TRUE(llee.writeProfile(bc, profile, *m));
    std::vector<uint8_t> bytes;
    EXPECT_TRUE(storage.read("llee-native-cache",
                             LLEE::programKey(bc) + ".profile",
                             bytes));
    EXPECT_FALSE(bytes.empty());
}
