/**
 * @file
 * Parser tests: the paper's Fig. 2 syntax, round-tripping through
 * the printer, forward references, every instruction form, and
 * error diagnostics.
 */

#include <gtest/gtest.h>

#include "ir/instructions.h"
#include "parser/parser.h"
#include "verifier/verifier.h"

using namespace llva;

namespace {

std::unique_ptr<Module>
parseOk(const std::string &src)
{
    auto m = parseAssembly(src, "test").orDie();
    VerifyResult r = verifyModule(*m);
    EXPECT_TRUE(r.ok()) << r.str();
    return m;
}

/** Parse, print, reparse, print — both prints must agree. */
void
expectRoundTrip(const std::string &src)
{
    auto m1 = parseAssembly(src, "rt").orDie();
    std::string p1 = m1->str();
    auto m2 = parseAssembly(p1, "rt").orDie();
    EXPECT_EQ(p1, m2->str());
}

} // namespace

TEST(Parser, PaperFigure2)
{
    auto m = parseOk(R"(
%struct.QuadTree = type { double, [4 x %struct.QuadTree*] }
void %Sum3rdChildren(%struct.QuadTree* %T, double* %Result) {
entry:
    %V = alloca double
    %tmp.0 = seteq %struct.QuadTree* %T, null
    br bool %tmp.0, label %endif, label %else
else:
    %tmp.1 = getelementptr %struct.QuadTree* %T, long 0, ubyte 1, long 3
    %Child3 = load %struct.QuadTree** %tmp.1
    call void %Sum3rdChildren(%struct.QuadTree* %Child3, double* %V)
    %tmp.2 = load double* %V
    %tmp.3 = getelementptr %struct.QuadTree* %T, long 0, ubyte 0
    %tmp.4 = load double* %tmp.3
    %Ret.0 = add double %tmp.2, %tmp.4
    br label %endif
endif:
    %Ret.1 = phi double [ %Ret.0, %else ], [ 0.0, %entry ]
    store double %Ret.1, double* %Result
    ret void
}
)");
    Function *f = m->getFunction("Sum3rdChildren");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->size(), 3u);
    EXPECT_EQ(f->numArgs(), 2u);
    EXPECT_EQ(f->arg(0)->name(), "T");
    // Phi resolved the forward reference to %Ret.0.
    BasicBlock *endif = f->findBlock("endif");
    ASSERT_NE(endif, nullptr);
    auto *phi = dyn_cast<PhiNode>(endif->front());
    ASSERT_NE(phi, nullptr);
    EXPECT_EQ(phi->numIncoming(), 2u);
    EXPECT_TRUE(isa<BinaryOperator>(phi->incomingValue(0)));
}

TEST(Parser, TargetFlags)
{
    auto m = parseOk("target pointersize = 32\n"
                     "target endian = big\n");
    EXPECT_EQ(m->pointerSize(), 4u);
    EXPECT_TRUE(m->targetFlags().bigEndian);
}

TEST(Parser, AllBinaryOps)
{
    auto m = parseOk(R"(
int %ops(int %a, int %b) {
entry:
    %1 = add int %a, %b
    %2 = sub int %1, %b
    %3 = mul int %2, %b
    %4 = div int %3, 7
    %5 = rem int %4, 5
    %6 = and int %5, %b
    %7 = or int %6, %b
    %8 = xor int %7, %b
    %9 = shl int %8, ubyte 2
    %10 = shr int %9, ubyte 1
    ret int %10
}
)");
    EXPECT_EQ(m->getFunction("ops")->instructionCount(), 11u);
}

TEST(Parser, AllComparisons)
{
    parseOk(R"(
bool %cmps(long %a, long %b) {
entry:
    %1 = seteq long %a, %b
    %2 = setne long %a, %b
    %3 = setlt long %a, %b
    %4 = setgt long %a, %b
    %5 = setle long %a, %b
    %6 = setge long %a, %b
    %7 = and bool %1, %2
    %8 = and bool %3, %4
    %9 = and bool %5, %6
    %10 = and bool %7, %8
    %11 = and bool %10, %9
    ret bool %11
}
)");
}

TEST(Parser, MBrSyntax)
{
    auto m = parseOk(R"(
int %sw(uint %v) {
entry:
    mbr uint %v, label %def [ uint 1, label %one, uint 2, label %two ]
one:
    ret int 1
two:
    ret int 2
def:
    ret int 0
}
)");
    auto *mbr = dyn_cast<MBrInst>(
        m->getFunction("sw")->entryBlock()->terminator());
    ASSERT_NE(mbr, nullptr);
    EXPECT_EQ(mbr->numCases(), 2u);
}

TEST(Parser, InvokeUnwind)
{
    auto m = parseOk(R"(
void %thrower(int %x) {
entry:
    %c = setlt int %x, 0
    br bool %c, label %bad, label %good
bad:
    unwind
good:
    ret void
}
int %catcher(int %x) {
entry:
    invoke void %thrower(int %x) to label %ok unwind label %err
ok:
    ret int 0
err:
    ret int 1
}
)");
    auto *inv = dyn_cast<InvokeInst>(
        m->getFunction("catcher")->entryBlock()->terminator());
    ASSERT_NE(inv, nullptr);
    EXPECT_EQ(inv->normalDest()->name(), "ok");
    EXPECT_EQ(inv->unwindDest()->name(), "err");
}

TEST(Parser, ExceptionsAttributeSyntax)
{
    auto m = parseOk(R"(
int %f(int* %p, int %d) {
entry:
    %v = load int* %p !ee(false)
    %q = div int %v, %d !ee(false)
    %r = add int %q, 1 !ee(true)
    ret int %r
}
)");
    BasicBlock *bb = m->getFunction("f")->entryBlock();
    auto it = bb->begin();
    EXPECT_FALSE((*it)->exceptionsEnabled()); // load overridden
    ++it;
    EXPECT_FALSE((*it)->exceptionsEnabled()); // div overridden
    ++it;
    EXPECT_TRUE((*it)->exceptionsEnabled()); // add overridden
}

TEST(Parser, GlobalsAndInitializers)
{
    auto m = parseOk(R"(
%msg = constant [6 x ubyte] c"hello\00"
%tab = global [3 x int] [ int 1, int 2, int 3 ]
%pair = global { int, double } { int 4, double 2.5 }
%gptr = global int* null
%count = internal global long 9
%zero = global int zeroinitializer
)");
    EXPECT_NE(m->getGlobal("msg"), nullptr);
    EXPECT_TRUE(m->getGlobal("msg")->isConstant());
    auto *tab =
        dyn_cast<ConstantAggregate>(m->getGlobal("tab")->initializer());
    ASSERT_NE(tab, nullptr);
    EXPECT_EQ(tab->numElements(), 3u);
    EXPECT_EQ(m->getGlobal("count")->linkage(), Linkage::Internal);
    EXPECT_EQ(m->getGlobal("zero")->initializer(), nullptr);
}

TEST(Parser, FunctionPointerGlobals)
{
    auto m = parseOk(R"(
int %inc(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}
%fp = global int (int)* %inc
int %callit(int %v) {
entry:
    %f = load int (int)** %fp
    %r = call int %f(int %v)
    ret int %r
}
)");
    EXPECT_EQ(m->getGlobal("fp")->initializer(),
              m->getFunction("inc"));
}

TEST(Parser, ForwardFunctionReference)
{
    // callee defined after the caller: pass 1 collects signatures.
    parseOk(R"(
int %a(int %x) {
entry:
    %r = call int %b(int %x)
    ret int %r
}
int %b(int %x) {
entry:
    ret int %x
}
)");
}

TEST(Parser, VarArgsDeclaration)
{
    auto m = parseOk("declare int %printf(ubyte* %fmt, ...)\n");
    Function *f = m->getFunction("printf");
    ASSERT_NE(f, nullptr);
    EXPECT_TRUE(f->functionType()->isVarArg());
    EXPECT_TRUE(f->isDeclaration());
}

TEST(Parser, MutuallyRecursiveTypes)
{
    auto m = parseOk(R"(
%A = type { int, %B* }
%B = type { double, %A* }
%a = global %A* null
)");
    StructType *a = m->types().namedType("A");
    StructType *bt = m->types().namedType("B");
    ASSERT_NE(a, nullptr);
    ASSERT_NE(bt, nullptr);
    EXPECT_EQ(cast<PointerType>(a->field(1))->pointee(), bt);
    EXPECT_EQ(cast<PointerType>(bt->field(1))->pointee(), a);
}

TEST(Parser, RoundTripRich)
{
    expectRoundTrip(R"(
target pointersize = 64
%struct.Node = type { long, %struct.Node* }
%lut = constant [4 x long] [ long 1, long -2, long 3, long 4 ]
declare ubyte* %malloc(ulong %n)
internal long %sum(%struct.Node* %head) {
entry:
    br label %loop
loop:
    %cur = phi %struct.Node* [ %head, %entry ], [ %nxt, %body ]
    %acc = phi long [ 0, %entry ], [ %acc2, %body ]
    %done = seteq %struct.Node* %cur, null
    br bool %done, label %out, label %body
body:
    %vp = getelementptr %struct.Node* %cur, long 0, ubyte 0
    %v = load long* %vp
    %acc2 = add long %acc, %v
    %np = getelementptr %struct.Node* %cur, long 0, ubyte 1
    %nxt = load %struct.Node** %np
    br label %loop
out:
    ret long %acc
}
)");
}

TEST(Parser, NegativeAndFloatLiterals)
{
    auto m = parseOk(R"(
double %lits() {
entry:
    %a = add double 1.5, -2.25
    %b = mul double %a, 1.0e3
    %c = add double %b, 0.001
    ret double %c
}
int %negs() {
entry:
    %a = add int -5, -6
    ret int %a
}
)");
    (void)m;
}

/** Parse source expected to fail; return the diagnostic. */
static std::string
parseErr(const std::string &src)
{
    auto r = parseAssembly(src);
    EXPECT_FALSE(r.ok()) << "source parsed unexpectedly";
    return r.ok() ? std::string() : r.error().message();
}

TEST(Parser, ErrorUnknownValue)
{
    std::string e = parseErr(R"(
int %f() {
entry:
    ret int %nope
}
)");
    // Diagnostics carry the exact line:column of the bad token.
    EXPECT_NE(e.find("line 4:13:"), std::string::npos) << e;
    EXPECT_NE(e.find("nope"), std::string::npos) << e;
}

TEST(Parser, ErrorUndefinedLabel)
{
    std::string e = parseErr(R"(
int %f(bool %c) {
entry:
    br bool %c, label %a, label %missing
a:
    ret int 0
}
)");
    EXPECT_NE(e.find("line "), std::string::npos) << e;
    EXPECT_NE(e.find("missing"), std::string::npos) << e;
}

TEST(Parser, ErrorSSARedefinition)
{
    std::string e = parseErr(R"(
int %f(int %x) {
entry:
    %v = add int %x, 1
    %v = add int %x, 2
    ret int %v
}
)");
    EXPECT_NE(e.find("line 5:"), std::string::npos) << e;
}

TEST(Parser, ErrorTypeMismatch)
{
    std::string e = parseErr(R"(
int %f(long %x) {
entry:
    %v = add int %x, 1
    ret int %v
}
)");
    EXPECT_NE(e.find("line 4:"), std::string::npos) << e;
}

TEST(Parser, ErrorDuplicateFunction)
{
    std::string e = parseErr(R"(
int %f() {
entry:
    ret int 0
}
int %f() {
entry:
    ret int 1
}
)");
    EXPECT_NE(e.find("line "), std::string::npos) << e;
}

TEST(Parser, ErrorBadToken)
{
    std::string e =
        parseErr("int %f() { entry: ret int #5 }");
    EXPECT_NE(e.find("line 1:27:"), std::string::npos) << e;
}

TEST(Parser, ErrorsAreValues)
{
    // The boundary never throws on malformed input and trusted
    // callers can still opt back into throwing via orDie().
    auto r = parseAssembly("garbage !!");
    ASSERT_FALSE(r.ok());
    EXPECT_THROW(parseAssembly("garbage !!").orDie(), FatalError);
}

TEST(Parser, StringEscapes)
{
    auto m = parseOk("%s = constant [4 x ubyte] c\"a\\00b\\FF\"\n");
    auto *cs =
        cast<ConstantString>(m->getGlobal("s")->initializer());
    ASSERT_EQ(cs->data().size(), 4u);
    EXPECT_EQ(static_cast<unsigned char>(cs->data()[1]), 0u);
    EXPECT_EQ(static_cast<unsigned char>(cs->data()[3]), 0xffu);
}

TEST(Parser, CommentsAndWhitespace)
{
    parseOk(R"(
; leading comment
int %f() { ; trailing comment
entry: ; block comment
    ret int 0 ; done
}
)");
}
