/**
 * @file
 * Staged-pipeline tests: AnalysisManager caching and invalidation
 * driven through the PassManager (observed via the statistics
 * registry), deterministic parallel translation (byte-identical to
 * serial for any worker count), parallel offline translation, and
 * the pass/stage observability surface (-time-passes, -stats).
 */

#include <gtest/gtest.h>

#include <atomic>

#include "analysis/analysis_manager.h"
#include "bytecode/bytecode.h"
#include "codegen/codegen.h"
#include "llee/llee.h"
#include "llee/mcode_io.h"
#include "parser/parser.h"
#include "support/statistic.h"
#include "support/thread_pool.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/machine_sim.h"
#include "workloads/workloads.h"

using namespace llva;

namespace {

/**
 * One function whose CFG SimplifyCFG will rewrite (constant branch,
 * straight-line merge) and whose allocas Mem2Reg will promote, so a
 * single module exercises both preserving and invalidating passes.
 */
const char *kFoldable = R"(
int %f(int %n) {
entry:
    %p = alloca int
    store int %n, int* %p
    br bool true, label %then, label %else
then:
    %v = load int* %p
    %r = add int %v, 1
    br label %join
else:
    br label %join
join:
    %phi = phi int [ %r, %then ], [ 0, %else ]
    ret int %phi
}
)";

uint64_t
domtreeComputed()
{
    return stats::value("analysis.domtree.computed");
}

uint64_t
domtreeHits()
{
    return stats::value("analysis.domtree.cache_hits");
}

} // namespace

TEST(Pipeline, DomTreeComputedOnceAcrossPreservingPasses)
{
    auto m = parseAssembly(kFoldable).orDie();
    verifyOrDie(*m);

    // Mem2Reg and GVN both request the dominator tree and both
    // preserve the CFG: one construction, the rest cache hits.
    PassManager pm;
    pm.add(createMem2RegPass());
    pm.add(createGVNPass());
    pm.add(createGVNPass());

    uint64_t computed0 = domtreeComputed(), hits0 = domtreeHits();
    AnalysisManager am;
    pm.run(*m, am);
    EXPECT_EQ(domtreeComputed() - computed0, 1u);
    EXPECT_EQ(domtreeHits() - hits0, 2u);
}

TEST(Pipeline, SimplifyCFGInvalidatesDomTree)
{
    auto m = parseAssembly(kFoldable).orDie();
    verifyOrDie(*m);

    // Mem2Reg computes the tree; SimplifyCFG folds the constant
    // branch (PreservedAnalyses::none()); the trailing GVN must see
    // a fresh tree, not the stale pre-fold one.
    PassManager pm;
    pm.add(createMem2RegPass());
    pm.add(createSimplifyCFGPass());
    pm.add(createGVNPass());

    uint64_t computed0 = domtreeComputed();
    AnalysisManager am;
    pm.run(*m, am);
    EXPECT_EQ(domtreeComputed() - computed0, 2u);
    // And the fold actually happened, so the invalidation was real.
    EXPECT_EQ(m->getFunction("f")->size(), 1u);
}

TEST(Pipeline, AnalysisManagerCachesPerFunction)
{
    auto m = parseAssembly(R"(
int %a(int %x) {
entry:
    ret int %x
}
int %b(int %x) {
entry:
    ret int %x
}
)").orDie();
    verifyOrDie(*m);

    AnalysisManager am;
    Function *a = m->getFunction("a"), *b = m->getFunction("b");
    DominatorTree &da = am.dominators(*a);
    EXPECT_TRUE(am.isCached(*a, AnalysisID::DominatorTree));
    EXPECT_FALSE(am.isCached(*b, AnalysisID::DominatorTree));
    // Second request returns the same object.
    EXPECT_EQ(&am.dominators(*a), &da);

    // Invalidation honours the preservation mask per function.
    am.invalidate(*a, PreservedAnalyses::all());
    EXPECT_TRUE(am.isCached(*a, AnalysisID::DominatorTree));
    am.invalidate(*a, PreservedAnalyses::none());
    EXPECT_FALSE(am.isCached(*a, AnalysisID::DominatorTree));
}

TEST(Pipeline, LoopInfoInvalidatedWithCFG)
{
    auto m = parseAssembly(kFoldable).orDie();
    verifyOrDie(*m);
    Function *f = m->getFunction("f");

    AnalysisManager am;
    am.loops(*f); // forces dominators too
    EXPECT_TRUE(am.isCached(*f, AnalysisID::LoopInfo));
    EXPECT_TRUE(am.isCached(*f, AnalysisID::DominatorTree));

    PreservedAnalyses onlyDom =
        PreservedAnalyses::none().preserve(AnalysisID::DominatorTree);
    am.invalidate(*f, onlyDom);
    EXPECT_FALSE(am.isCached(*f, AnalysisID::LoopInfo));
    EXPECT_TRUE(am.isCached(*f, AnalysisID::DominatorTree));
}

TEST(Pipeline, ModulePassChangeFlushesAnalyses)
{
    auto m = parseAssembly(R"(
internal int %callee(int %x) {
entry:
    %r = add int %x, 1
    ret int %r
}
int %main() {
entry:
    %v = call int %callee(int 4)
    ret int %v
}
)").orDie();
    verifyOrDie(*m);

    // Inlining rewrites callers module-wide, so every cached
    // analysis must be dropped at the module-pass barrier.
    PassManager pm;
    pm.add(createMem2RegPass()); // caches domtrees
    pm.add(createInlinerPass());
    AnalysisManager am;
    pm.run(*m, am);
    for (const auto &f : m->functions()) {
        if (!f->isDeclaration()) {
            EXPECT_FALSE(
                am.isCached(*f, AnalysisID::DominatorTree));
        }
    }
}

TEST(Pipeline, PassTimingsArePopulated)
{
    auto m = buildWorkload("ptrdist-anagram");
    PassManager pm;
    addStandardPasses(pm, 2);
    pm.run(*m);

    const auto &timings = pm.timings();
    ASSERT_FALSE(timings.empty());
    for (const auto &t : timings) {
        EXPECT_FALSE(t.name.empty());
        EXPECT_GT(t.invocations, 0u);
        EXPECT_GE(t.seconds, 0.0);
    }
    std::string report = pm.timingReport();
    EXPECT_NE(report.find("mem2reg"), std::string::npos);
    EXPECT_NE(report.find("total"), std::string::npos);
}

TEST(Pipeline, StatsReportNamesPipelineCounters)
{
    auto m = buildWorkload("ptrdist-anagram");
    CodeManager cm(*getTarget("x86"));
    cm.translateAll(*m);
    std::string report = stats::report();
    EXPECT_NE(report.find("codegen.instructions_selected"),
              std::string::npos);
    EXPECT_NE(report.find("translate.isel"), std::string::npos);
    EXPECT_NE(report.find("translate.regalloc"), std::string::npos);
}

TEST(Pipeline, ParallelTranslationIsByteIdentical)
{
    // The acceptance bar for the threaded pipeline: for every
    // function, `-j 4` must produce the same machine code, byte for
    // byte, as serial translation. Several functions so the work
    // actually gets distributed across workers.
    std::string src;
    for (int i = 0; i < 8; ++i) {
        std::string n = std::to_string(i);
        src += "int %fn" + n + "(int %x) {\n"
               "entry:\n"
               "    %a = mul int %x, " + std::to_string(i + 2) + "\n"
               "    %c = setgt int %a, 10\n"
               "    br bool %c, label %big, label %small\n"
               "big:\n"
               "    %b = add int %a, " + n + "\n"
               "    ret int %b\n"
               "small:\n"
               "    ret int %a\n"
               "}\n";
    }
    auto m = parseAssembly(src).orDie();
    verifyOrDie(*m);
    Target &t = *getTarget("x86");

    CodeManager serial(t), parallel(t);
    serial.translateAll(*m);
    parallel.translateAll(*m, 4);

    size_t compared = 0;
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        ASSERT_TRUE(parallel.has(f.get())) << f->name();
        EXPECT_EQ(writeMachineFunction(*parallel.get(f.get())),
                  writeMachineFunction(*serial.get(f.get())))
            << f->name();
        EXPECT_EQ(encodeFunction(*parallel.get(f.get()), t),
                  encodeFunction(*serial.get(f.get()), t))
            << f->name();
        ++compared;
    }
    EXPECT_GT(compared, 1u);
    EXPECT_EQ(parallel.functionsTranslated(),
              serial.functionsTranslated());
}

TEST(Pipeline, ParallelTranslationRunsCorrectly)
{
    auto m = buildWorkload("ptrdist-anagram");
    Target &t = *getTarget("sparc");

    CodeManager serial(t), parallel(t);
    serial.translateAll(*m);
    parallel.translateAll(*m, 4);

    ExecutionContext ctx1(*m);
    MachineSimulator sim1(ctx1, serial);
    auto r1 = sim1.run(m->getFunction("main"));
    ExecutionContext ctx2(*m);
    MachineSimulator sim2(ctx2, parallel);
    auto r2 = sim2.run(m->getFunction("main"));
    ASSERT_TRUE(r1.ok());
    ASSERT_TRUE(r2.ok());
    EXPECT_EQ(r1.value.i, r2.value.i);
    EXPECT_EQ(ctx1.output(), ctx2.output());
    EXPECT_EQ(sim1.instructionsExecuted(),
              sim2.instructionsExecuted());
}

TEST(Pipeline, ParallelOfflineTranslationMatchesSerial)
{
    auto m = buildWorkload("ptrdist-anagram");
    auto bc = writeBytecode(*m);

    MemoryStorage s1, s2;
    LLEE serial(*getTarget("x86"), &s1);
    LLEE threaded(*getTarget("x86"), &s2);
    threaded.setJobs(4);

    size_t n1 = serial.offlineTranslate(bc);
    size_t n2 = threaded.offlineTranslate(bc);
    EXPECT_EQ(n1, n2);
    EXPECT_GT(n1, 0u);

    // The caches must hold identical artifacts under identical keys.
    auto keys1 = s1.list("llee-native-cache");
    auto keys2 = s2.list("llee-native-cache");
    ASSERT_EQ(keys1, keys2);
    for (const auto &k : keys1) {
        std::vector<uint8_t> b1, b2;
        ASSERT_TRUE(s1.read("llee-native-cache", k, b1));
        ASSERT_TRUE(s2.read("llee-native-cache", k, b2));
        EXPECT_EQ(b1, b2) << k;
    }
}

TEST(Pipeline, ParallelExecuteMatchesSerialExecute)
{
    auto m = buildWorkload("ptrdist-anagram");
    auto bc = writeBytecode(*m);

    LLEE serial(*getTarget("x86"), nullptr);
    LLEE threaded(*getTarget("x86"), nullptr);
    threaded.setJobs(4);
    LLEEResult r1 = serial.execute(bc);
    LLEEResult r2 = threaded.execute(bc);
    ASSERT_TRUE(r1.exec.ok());
    ASSERT_TRUE(r2.exec.ok());
    EXPECT_EQ(r1.exec.value.i, r2.exec.value.i);
    EXPECT_EQ(r1.output, r2.output);
    EXPECT_EQ(r1.machineInstructionsExecuted,
              r2.machineInstructionsExecuted);
}

TEST(Pipeline, ParallelForCoversEveryIndexOnce)
{
    std::vector<std::atomic<int>> counts(1000);
    for (auto &c : counts)
        c.store(0);
    parallelFor(counts.size(), 8,
                [&](size_t i) { counts[i].fetch_add(1); });
    for (auto &c : counts)
        EXPECT_EQ(c.load(), 1);
}

TEST(Pipeline, ParallelForPropagatesExceptions)
{
    EXPECT_THROW(parallelFor(64, 4,
                             [](size_t i) {
                                 if (i == 13)
                                     throw FatalError("boom");
                             }),
                 FatalError);
}
