/**
 * @file
 * Automatic Pool Allocation tests (paper Section 5.1): disjoint
 * data-structure instances get separate pools, each pool's
 * allocations are spatially contiguous (the locality property the
 * transformation exists for), semantics are preserved across the
 * whole workload suite, and shared structures share a pool.
 */

#include <gtest/gtest.h>

#include "analysis/alias_analysis.h"
#include "ir/instructions.h"
#include "parser/parser.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"
#include "workloads/workloads.h"

using namespace llva;

namespace {

// Two disjoint linked lists built with interleaved mallocs: without
// pools, nodes of the two lists alternate in the heap; with pools,
// each list is contiguous.
const char *kTwoLists = R"(
%N = type { long, %N* }
declare ubyte* %malloc(ulong %n)
declare void %free(ubyte* %p)
declare void %putint(long %v)

internal %N* %push(%N* %head, long %v) {
entry:
    %raw = call ubyte* %malloc(ulong 16)
    %n = cast ubyte* %raw to %N*
    %vp = getelementptr %N* %n, long 0, ubyte 0
    store long %v, long* %vp
    %np = getelementptr %N* %n, long 0, ubyte 1
    store %N* %head, %N** %np
    ret %N* %n
}

internal %N* %pushB(%N* %head, long %v) {
entry:
    %raw = call ubyte* %malloc(ulong 16)
    %n = cast ubyte* %raw to %N*
    %vp = getelementptr %N* %n, long 0, ubyte 0
    store long %v, long* %vp
    %np = getelementptr %N* %n, long 0, ubyte 1
    store %N* %head, %N** %np
    ret %N* %n
}

; Separate walkers per list: the unification-based points-to
; analysis would merge both lists through a shared callee parameter
; (the paper's context-sensitive DSA keeps them apart without this).
internal long %sumA(%N* %head) {
entry:
    br label %walk
walk:
    %cur = phi %N* [ %head, %entry ], [ %next, %step ]
    %acc = phi long [ 0, %entry ], [ %acc2, %step ]
    %done = seteq %N* %cur, null
    br bool %done, label %out, label %step
step:
    %vp = getelementptr %N* %cur, long 0, ubyte 0
    %v = load long* %vp
    %acc2 = add long %acc, %v
    %np = getelementptr %N* %cur, long 0, ubyte 1
    %next = load %N** %np
    br label %walk
out:
    ret long %acc
}

internal long %sumB(%N* %head) {
entry:
    br label %walk
walk:
    %cur = phi %N* [ %head, %entry ], [ %next, %step ]
    %acc = phi long [ 0, %entry ], [ %acc2, %step ]
    %done = seteq %N* %cur, null
    br bool %done, label %out, label %step
step:
    %vp = getelementptr %N* %cur, long 0, ubyte 0
    %v = load long* %vp
    %acc2 = add long %acc, %v
    %np = getelementptr %N* %cur, long 0, ubyte 1
    %next = load %N** %np
    br label %walk
out:
    ret long %acc
}

int %main() {
entry:
    br label %build
build:
    %i = phi long [ 0, %entry ], [ %i2, %build ]
    %a = phi %N* [ null, %entry ], [ %a2, %build ]
    %b = phi %N* [ null, %entry ], [ %b2, %build ]
    %a2 = call %N* %push(%N* %a, long %i)
    %negi = sub long 0, %i
    %b2 = call %N* %pushB(%N* %b, long %negi)
    %i2 = add long %i, 1
    %more = setlt long %i2, 32
    br bool %more, label %build, label %use
use:
    %sa = call long %sumA(%N* %a2)
    %sb = call long %sumB(%N* %b2)
    %d = sub long %sa, %sb
    call void %putint(long %d)
    %r = cast long %d to int
    ret int %r
}
)";

} // namespace

TEST(PoolAlloc, RewritesMallocsToPoolCalls)
{
    auto m = parseAssembly(kTwoLists).orDie();
    verifyOrDie(*m);
    PassManager pm;
    pm.setVerifyEach(true);
    pm.add(createPoolAllocationPass());
    EXPECT_TRUE(pm.run(*m));

    size_t pool_allocs = 0, plain_mallocs = 0;
    for (const auto &f : m->functions())
        for (const auto &bb : *f)
            for (const auto &inst : *bb)
                if (auto *c = dyn_cast<CallInst>(inst.get())) {
                    if (c->calledFunction() &&
                        c->calledFunction()->name() ==
                            "llva.poolalloc")
                        ++pool_allocs;
                    if (c->calledFunction() &&
                        c->calledFunction()->name() == "malloc")
                        ++plain_mallocs;
                }
    EXPECT_EQ(pool_allocs, 2u);
    EXPECT_EQ(plain_mallocs, 0u);
    // One pool per disjoint list.
    EXPECT_NE(m->getGlobal("pool.0"), nullptr);
    EXPECT_NE(m->getGlobal("pool.1"), nullptr);
}

TEST(PoolAlloc, DisjointListsGetDisjointContiguousPools)
{
    auto m = parseAssembly(kTwoLists).orDie();
    PassManager pm;
    pm.add(createPoolAllocationPass());
    pm.run(*m);
    verifyOrDie(*m);

    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    auto r = interp.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok());

    ASSERT_EQ(ctx.pools().size(), 2u);
    std::vector<ExecutionContext::PoolState> ps;
    for (const auto &[addr, pool] : ctx.pools())
        ps.push_back(pool);

    // Each pool served exactly one list: 32 nodes x 16 bytes.
    for (const auto &pool : ps) {
        EXPECT_EQ(pool.totalAllocated, 32u * 16u);
        // Contiguity: the address range equals the bytes allocated
        // (a single bump-allocated run, no interleaving).
        EXPECT_EQ(pool.hiAddr - pool.loAddr, pool.totalAllocated);
    }
    // And the two pools do not overlap.
    EXPECT_TRUE(ps[0].hiAddr <= ps[1].loAddr ||
                ps[1].hiAddr <= ps[0].loAddr);
}

TEST(PoolAlloc, WithoutPoolsTheListsInterleave)
{
    // The baseline the transformation improves on: interleaved
    // mallocs spread each list across the whole allocation range.
    auto m = parseAssembly(kTwoLists).orDie();
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    auto r = interp.run(m->getFunction("main"));
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(ctx.pools().empty());
    // 64 allocations of 16 bytes: the heap range spans both lists,
    // i.e. each list's spread is ~2x its data size.
    EXPECT_GE(ctx.memory().heapBytesAllocated(), 64u * 16u);
}

TEST(PoolAlloc, SemanticsPreservedOnAllEngines)
{
    auto plain = parseAssembly(kTwoLists).orDie();
    ExecutionContext pctx(*plain);
    Interpreter pi(pctx);
    auto pref = pi.run(plain->getFunction("main"));
    ASSERT_TRUE(pref.ok());

    auto pooled = parseAssembly(kTwoLists).orDie();
    PassManager pm;
    pm.add(createPoolAllocationPass());
    pm.run(*pooled);
    verifyOrDie(*pooled);

    ExecutionContext ictx(*pooled);
    Interpreter interp(ictx);
    auto r = interp.run(pooled->getFunction("main"));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value.i, pref.value.i);
    EXPECT_EQ(ictx.output(), pctx.output());

    for (const char *t : {"x86", "sparc"}) {
        ExecutionContext ctx(*pooled);
        CodeManager cm(*getTarget(t));
        MachineSimulator sim(ctx, cm);
        auto sr = sim.run(pooled->getFunction("main"));
        ASSERT_TRUE(sr.ok()) << t;
        EXPECT_EQ(sr.value.i, pref.value.i) << t;
        EXPECT_EQ(ctx.output(), pctx.output()) << t;
    }
}

TEST(PoolAlloc, SharedStructureSharesOnePool)
{
    // Two allocation sites linked into ONE list must share a pool.
    auto m = parseAssembly(R"(
%N = type { long, %N* }
declare ubyte* %malloc(ulong %n)
int %main() {
entry:
    %r1 = call ubyte* %malloc(ulong 16)
    %a = cast ubyte* %r1 to %N*
    %r2 = call ubyte* %malloc(ulong 16)
    %b = cast ubyte* %r2 to %N*
    %np = getelementptr %N* %a, long 0, ubyte 1
    store %N* %b, %N** %np
    ret int 0
}
)").orDie();
    PassManager pm;
    pm.add(createPoolAllocationPass());
    pm.run(*m);
    verifyOrDie(*m);
    EXPECT_NE(m->getGlobal("pool.0"), nullptr);
    EXPECT_EQ(m->getGlobal("pool.1"), nullptr);
}

TEST(PoolAlloc, WorkloadSuiteSurvivesPooling)
{
    // Heap-heavy workloads run identically after pool allocation.
    for (const char *name :
         {"ptrdist-ft", "255.vortex", "300.twolf"}) {
        auto plain = buildWorkload(name, 1);
        ExecutionContext pctx(*plain);
        Interpreter pi(pctx);
        pi.setInstructionLimit(100000000);
        auto ref = pi.run(plain->getFunction("main"));
        ASSERT_TRUE(ref.ok()) << name;

        auto pooled = buildWorkload(name, 1);
        PassManager pm;
        pm.setVerifyEach(true);
        pm.add(createPoolAllocationPass());
        pm.run(*pooled);

        ExecutionContext ctx(*pooled);
        Interpreter interp(ctx);
        interp.setInstructionLimit(100000000);
        auto r = interp.run(pooled->getFunction("main"));
        ASSERT_TRUE(r.ok()) << name;
        EXPECT_EQ(r.value.i, ref.value.i) << name;
        EXPECT_EQ(ctx.output(), pctx.output()) << name;
    }
}
