/**
 * @file
 * Target-backend tests beyond test_codegen.cpp: golden disassembly
 * snapshots (the exact instruction sequences both backends emit for
 * a small function), encoder width properties (fixed 4-byte sparc
 * words under both allocators, variable-length x86), and getTarget
 * diagnostics for unknown target names.
 */

#include <gtest/gtest.h>

#include <set>

#include "codegen/codegen.h"
#include "parser/parser.h"
#include "support/error.h"
#include "verifier/verifier.h"

using namespace llva;

namespace {

const char *kMAdd = R"(
long %madd(long %a, long %b) {
entry:
    %m = mul long %a, %b
    %s = add long %m, 7
    ret long %s
}
)";

const char *kLoopFn = R"(
int %sum(int %n) {
entry:
    br label %cond
cond:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %acc = phi int [ 0, %entry ], [ %a2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %a2 = add int %acc, %i
    %i2 = add int %i, 1
    br label %cond
exit:
    ret int %acc
}
)";

std::unique_ptr<Module>
parse(const std::string &src)
{
    auto m = parseAssembly(src).orDie();
    verifyOrDie(*m);
    return m;
}

} // namespace

TEST(TargetGolden, X86MAddDisassembly)
{
    auto m = parse(kMAdd);
    auto mf = translateFunction(*m->getFunction("madd"),
                                *getTarget("x86"));
    EXPECT_EQ(machineFunctionToString(*mf, *getTarget("x86")),
              "madd:  ; x86, frame 0 bytes\n"
              ".entry:\n"
              "    mov %rax, [%rsp+0]\n"
              "    mov %rcx, [%rsp+8]\n"
              "    mov %rdx, %rax\n"
              "    imul %rdx, %rcx\n"
              "    mov %rax, %rdx\n"
              "    add %rax, $7\n"
              "    ret\n");
}

TEST(TargetGolden, SparcMAddDisassembly)
{
    auto m = parse(kMAdd);
    auto mf = translateFunction(*m->getFunction("madd"),
                                *getTarget("sparc"));
    EXPECT_EQ(machineFunctionToString(*mf, *getTarget("sparc")),
              "madd:  ; sparc, frame 0 bytes\n"
              ".entry:\n"
              "    mov %o0, %g1\n"
              "    mov %o1, %g2\n"
              "    mulx %g1, %g2, %g3\n"
              "    add %g3, 7, %g1\n"
              "    mov %g1, %o0\n"
              "    ret\n"
              "    nop\n");
}

TEST(TargetEncoding, SparcEveryInstructionIsExactlyFourBytes)
{
    auto m = parse(kLoopFn);
    Target &sparc = *getTarget("sparc");
    for (auto alloc : {CodeGenOptions::Allocator::Local,
                       CodeGenOptions::Allocator::LinearScan}) {
        CodeGenOptions opts;
        opts.allocator = alloc;
        auto mf = translateFunction(*m->getFunction("sum"), sparc,
                                    opts);
        for (const auto &mbb : mf->blocks())
            for (const auto &mi : mbb->instrs())
                EXPECT_EQ(sparc.encode(*mi).size(), 4u)
                    << sparc.instrToString(*mi);
    }
}

TEST(TargetEncoding, X86UsesAtLeastTwoInstructionLengths)
{
    auto m = parse(kLoopFn);
    Target &x86 = *getTarget("x86");
    for (auto alloc : {CodeGenOptions::Allocator::Local,
                       CodeGenOptions::Allocator::LinearScan}) {
        CodeGenOptions opts;
        opts.allocator = alloc;
        auto mf =
            translateFunction(*m->getFunction("sum"), x86, opts);
        std::set<size_t> sizes;
        for (const auto &mbb : mf->blocks())
            for (const auto &mi : mbb->instrs()) {
                size_t n = x86.encode(*mi).size();
                EXPECT_GE(n, 1u) << x86.instrToString(*mi);
                sizes.insert(n);
            }
        EXPECT_GE(sizes.size(), 2u);
    }
}

TEST(TargetEncoding, X86ImmediateWidthAffectsLength)
{
    // imm8 vs imm32 forms: the same add encodes shorter when the
    // immediate fits a byte.
    auto small = parse(R"(
long %f(long %v) {
entry:
    %b = add long %v, 7
    ret long %b
}
)");
    auto big = parse(R"(
long %f(long %v) {
entry:
    %b = add long %v, 123456789
    ret long %b
}
)");
    Target &x86 = *getTarget("x86");
    auto encSize = [&](Module &m) {
        auto mf = translateFunction(*m.getFunction("f"), x86);
        return encodeFunction(*mf, x86).size();
    };
    EXPECT_LT(encSize(*small), encSize(*big));
}

TEST(TargetRegistry, KnownNamesRoundTrip)
{
    for (const std::string &name : targetNames()) {
        Target *t = getTarget(name);
        ASSERT_NE(t, nullptr);
        EXPECT_EQ(t->name(), name);
    }
}

TEST(TargetRegistry, UnknownTargetFailsWithKnownList)
{
    auto message = [](const std::string &name) {
        try {
            getTarget(name);
        } catch (const FatalError &e) {
            return std::string(e.what());
        }
        return std::string("no error");
    };
    EXPECT_EQ(message("vax"),
              "unknown target 'vax' (known targets: x86, sparc)");
    EXPECT_EQ(message(""),
              "unknown target '' (known targets: x86, sparc)");
}
