/**
 * @file
 * Target-backend tests beyond test_codegen.cpp, table-driven over
 * the registry: golden disassembly snapshots (the exact instruction
 * sequences each backend emits for a small function), encoder width
 * properties (fixed-word RISC encodings vs variable-length x86), and
 * getTarget diagnostics for unknown target names. Adding a backend
 * means adding one row per table; the per-table registry guards fail
 * if a registered target has no row.
 */

#include <gtest/gtest.h>

#include <set>

#include "codegen/codegen.h"
#include "parser/parser.h"
#include "support/error.h"
#include "verifier/verifier.h"

using namespace llva;

namespace {

const char *kMAdd = R"(
long %madd(long %a, long %b) {
entry:
    %m = mul long %a, %b
    %s = add long %m, 7
    ret long %s
}
)";

const char *kLoopFn = R"(
int %sum(int %n) {
entry:
    br label %cond
cond:
    %i = phi int [ 0, %entry ], [ %i2, %body ]
    %acc = phi int [ 0, %entry ], [ %a2, %body ]
    %c = setlt int %i, %n
    br bool %c, label %body, label %exit
body:
    %a2 = add int %acc, %i
    %i2 = add int %i, 1
    br label %cond
exit:
    ret int %acc
}
)";

std::unique_ptr<Module>
parse(const std::string &src)
{
    auto m = parseAssembly(src).orDie();
    verifyOrDie(*m);
    return m;
}

/** Golden disassembly of kMAdd, one row per registered target. */
struct GoldenRow
{
    const char *target;
    const char *expected;
};

const GoldenRow kMAddGolden[] = {
    {"x86",
     "madd:  ; x86, frame 0 bytes\n"
     ".entry:\n"
     "    mov %rax, [%rsp+0]\n"
     "    mov %rcx, [%rsp+8]\n"
     "    mov %rdx, %rax\n"
     "    imul %rdx, %rcx\n"
     "    mov %rax, %rdx\n"
     "    add %rax, $7\n"
     "    ret\n"},
    {"sparc",
     "madd:  ; sparc, frame 0 bytes\n"
     ".entry:\n"
     "    mov %o0, %g1\n"
     "    mov %o1, %g2\n"
     "    mulx %g1, %g2, %g3\n"
     "    add %g3, 7, %g1\n"
     "    mov %g1, %o0\n"
     "    ret\n"
     "    nop\n"},
    {"riscv",
     "madd:  ; riscv, frame 0 bytes\n"
     ".entry:\n"
     "    mv t0, a0\n"
     "    mv t1, a1\n"
     "    mul t2, t0, t1\n"
     "    addi t0, t2, 7\n"
     "    mv a0, t0\n"
     "    ret\n"},
};

/** Encoding-shape expectations: fixed word size, or 0 for a
 *  variable-length encoding (which must use >= 2 lengths). */
struct EncodingRow
{
    const char *target;
    size_t fixedBytes;
};

const EncodingRow kEncodingRows[] = {
    {"x86", 0},
    {"sparc", 4},
    {"riscv", 4},
};

template <typename Row, size_t N>
void
expectRowPerRegisteredTarget(const Row (&rows)[N])
{
    std::set<std::string> covered;
    for (const Row &r : rows)
        covered.insert(r.target);
    for (const std::string &name : targetNames())
        EXPECT_TRUE(covered.count(name))
            << "registered target '" << name
            << "' has no test-table row";
}

} // namespace

TEST(TargetGolden, MAddDisassemblyPerTarget)
{
    auto m = parse(kMAdd);
    for (const GoldenRow &row : kMAddGolden) {
        auto mf = translateFunction(*m->getFunction("madd"),
                                    *getTarget(row.target));
        EXPECT_EQ(machineFunctionToString(*mf,
                                          *getTarget(row.target)),
                  row.expected)
            << row.target;
    }
}

TEST(TargetGolden, EveryRegisteredTargetHasGoldenRow)
{
    expectRowPerRegisteredTarget(kMAddGolden);
}

TEST(TargetEncoding, EncodingShapePerTarget)
{
    auto m = parse(kLoopFn);
    for (const EncodingRow &row : kEncodingRows) {
        Target &target = *getTarget(row.target);
        for (auto alloc : {CodeGenOptions::Allocator::Local,
                           CodeGenOptions::Allocator::LinearScan}) {
            CodeGenOptions opts;
            opts.allocator = alloc;
            auto mf = translateFunction(*m->getFunction("sum"),
                                        target, opts);
            std::set<size_t> sizes;
            for (const auto &mbb : mf->blocks())
                for (const auto &mi : mbb->instrs()) {
                    size_t n = target.encode(*mi).size();
                    EXPECT_GE(n, 1u) << target.instrToString(*mi);
                    sizes.insert(n);
                }
            if (row.fixedBytes) {
                EXPECT_EQ(sizes.size(), 1u) << row.target;
                EXPECT_TRUE(sizes.count(row.fixedBytes))
                    << row.target;
            } else {
                EXPECT_GE(sizes.size(), 2u) << row.target;
            }
        }
    }
}

TEST(TargetEncoding, EveryRegisteredTargetHasEncodingRow)
{
    expectRowPerRegisteredTarget(kEncodingRows);
}

TEST(TargetEncoding, X86ImmediateWidthAffectsLength)
{
    // imm8 vs imm32 forms: the same add encodes shorter when the
    // immediate fits a byte.
    auto small = parse(R"(
long %f(long %v) {
entry:
    %b = add long %v, 7
    ret long %b
}
)");
    auto big = parse(R"(
long %f(long %v) {
entry:
    %b = add long %v, 123456789
    ret long %b
}
)");
    Target &x86 = *getTarget("x86");
    auto encSize = [&](Module &m) {
        auto mf = translateFunction(*m.getFunction("f"), x86);
        return encodeFunction(*mf, x86).size();
    };
    EXPECT_LT(encSize(*small), encSize(*big));
}

TEST(TargetRegistry, KnownNamesRoundTrip)
{
    for (const std::string &name : targetNames()) {
        Target *t = getTarget(name);
        ASSERT_NE(t, nullptr);
        EXPECT_EQ(t->name(), name);
    }
}

TEST(TargetRegistry, UnknownTargetFailsWithKnownList)
{
    auto message = [](const std::string &name) {
        try {
            getTarget(name);
        } catch (const FatalError &e) {
            return std::string(e.what());
        }
        return std::string("no error");
    };
    EXPECT_EQ(
        message("vax"),
        "unknown target 'vax' (known targets: x86, sparc, riscv)");
    EXPECT_EQ(
        message(""),
        "unknown target '' (known targets: x86, sparc, riscv)");
}
