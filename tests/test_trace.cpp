/**
 * @file
 * Trace-cache tests (paper Section 4.2): edge profiling over the
 * explicit CFG, hot-trace formation, the software trace cache and
 * its coverage metric, and the measurable benefit of trace-driven
 * code layout (fewer executed machine instructions through
 * fallthrough elision).
 */

#include <gtest/gtest.h>

#include <set>

#include "ir/clone.h"
#include "parser/parser.h"
#include "trace/trace.h"
#include "verifier/verifier.h"
#include "vm/machine_sim.h"

using namespace llva;

namespace {

// A loop whose body is heavily biased toward the 'hot' arm; the
// layout in the source puts the cold block in the middle of the hot
// path so trace layout has something to fix.
const char *kBiasedLoop = R"(
declare void %putint(long %v)
int %main() {
entry:
    br label %head
head:
    %i = phi int [ 0, %entry ], [ %i2, %latch ]
    %acc = phi int [ 0, %entry ], [ %acc2, %latch ]
    %r = rem int %i, 100
    %rare = seteq int %r, 99
    br bool %rare, label %cold, label %hot
cold:
    %c2 = mul int %acc, 2
    br label %latch
hot:
    %h2 = add int %acc, 1
    br label %latch
latch:
    %acc2 = phi int [ %c2, %cold ], [ %h2, %hot ]
    %i2 = add int %i, 1
    %more = setlt int %i2, 1000
    br bool %more, label %head, label %out
out:
    ret int %acc2
}
)";

} // namespace

TEST(Trace, ProfileCountsEdges)
{
    auto m = parseAssembly(kBiasedLoop).orDie();
    verifyOrDie(*m);
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(m->getFunction("main"));

    Function *f = m->getFunction("main");
    BasicBlock *head = f->findBlock("head");
    BasicBlock *hot = f->findBlock("hot");
    BasicBlock *cold = f->findBlock("cold");
    EXPECT_EQ(profile.blockCount(head), 1000u);
    EXPECT_EQ(profile.blockCount(hot), 990u);
    EXPECT_EQ(profile.blockCount(cold), 10u);
    EXPECT_EQ(profile.edgeCount(head, hot), 990u);
    EXPECT_EQ(profile.edgeCount(head, cold), 10u);
    EXPECT_EQ(profile.functionSamples(functionId("main")),
              profile.samples);
}

TEST(Trace, StableIdsSurviveSnapshotRestore)
{
    // The dangling-pointer hazard the stable IDs fix: a profile
    // gathered before a FunctionSnapshot restore must still resolve
    // afterwards, even though every BasicBlock it observed has been
    // destroyed and replaced by a clone.
    auto m = parseAssembly(kBiasedLoop).orDie();
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(f);

    FunctionSnapshot snap = FunctionSnapshot::capture(*f);
    snap.restoreInto(*f); // old blocks destroyed, clones adopted
    verifyOrDie(*m);

    EXPECT_EQ(profile.blockCount(f->findBlock("head")), 1000u);
    EXPECT_EQ(profile.edgeCount(f->findBlock("head"),
                                f->findBlock("hot")),
              990u);
    // And trace formation works against the restored body.
    auto traces = formTraces(*f, profile);
    ASSERT_FALSE(traces.empty());
    EXPECT_EQ(traces.front().head(), f->findBlock("head"));
}

TEST(Trace, DeprecatedPointerApiIsChecked)
{
    auto m = parseAssembly(kBiasedLoop).orDie();
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(f);

    // The deprecated shims still answer (through stable IDs)...
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
    EXPECT_EQ(profile.at(f->findBlock("head")), 1000u);
    EXPECT_EQ(profile.at(f->findBlock("head"), f->findBlock("hot")),
              990u);
#pragma GCC diagnostic pop

    // ...and asking for the ID of a detached block — the situation
    // the pointer-keyed profile silently corrupted on — panics
    // instead of reading freed memory.
    BasicBlock detached(f->functionType()->context(), "orphan");
    EXPECT_DEATH(blockId(&detached), "detached basic block");
}

TEST(Trace, FormsHotTraceFollowingBias)
{
    auto m = parseAssembly(kBiasedLoop).orDie();
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(f);

    auto traces = formTraces(*f, profile);
    ASSERT_FALSE(traces.empty());
    // The hottest trace starts at the loop head and follows the hot
    // arm, never the cold one.
    const Trace &t = traces.front();
    EXPECT_EQ(t.head(), f->findBlock("head"));
    bool has_hot = false, has_cold = false;
    for (BasicBlock *bb : t.blocks) {
        if (bb == f->findBlock("hot"))
            has_hot = true;
        if (bb == f->findBlock("cold"))
            has_cold = true;
    }
    EXPECT_TRUE(has_hot);
    EXPECT_FALSE(has_cold);
    EXPECT_GE(t.length(), 3u);
}

TEST(Trace, ColdCodeFormsNoTraces)
{
    auto m = parseAssembly(R"(
int %main() {
entry:
    %a = add int 1, 2
    ret int %a
}
)").orDie();
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(f);
    auto traces = formTraces(*f, profile); // below hotThreshold
    EXPECT_TRUE(traces.empty());
}

TEST(Trace, CacheLookupAndCoverage)
{
    auto m = parseAssembly(kBiasedLoop).orDie();
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(f);

    TraceCache cache;
    for (Trace &t : formTraces(*f, profile))
        cache.insert(std::move(t));
    ASSERT_GT(cache.size(), 0u);
    EXPECT_NE(cache.lookup(f->findBlock("head")), nullptr);
    EXPECT_EQ(cache.lookup(f->findBlock("cold")), nullptr);

    // The hot path dominates execution: coverage must be high.
    double cov = cache.coverage(profile);
    EXPECT_GT(cov, 0.9);
    EXPECT_LE(cov, 1.0);
}

TEST(Trace, CacheReplacesDuplicateHeadInPlace)
{
    // Regression: re-inserting a trace with the same head used to
    // overwrite the index entry but leave the stale trace in the
    // ordered store, so coverage() double-counted its blocks and
    // the cache grew without bound under repeated reoptimization.
    auto m = parseAssembly(kBiasedLoop).orDie();
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(f);

    auto traces = formTraces(*f, profile);
    ASSERT_FALSE(traces.empty());

    TraceCache cache;
    cache.insert(traces.front());
    size_t size1 = cache.size();
    size_t stored1 = cache.traces().size();
    double cov1 = cache.coverage(profile);

    // Re-optimization re-forms the same hot trace; insert it again
    // (a shortened variant, so replacement is observable).
    Trace shorter = traces.front();
    shorter.blocks.resize(2);
    cache.insert(shorter);

    EXPECT_EQ(cache.size(), size1);
    EXPECT_EQ(cache.traces().size(), stored1);
    const Trace *hit = cache.lookup(traces.front().head());
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->length(), 2u);
    // Coverage reflects only the replacement, never the sum.
    EXPECT_LE(cache.coverage(profile), cov1);

    // Inserting the full trace again restores the original numbers.
    cache.insert(traces.front());
    EXPECT_EQ(cache.size(), size1);
    EXPECT_DOUBLE_EQ(cache.coverage(profile), cov1);
}

TEST(Trace, RejectedSeedsAreReleasedForLaterTraces)
{
    // Regression for the seed-release bug. The hottest seeds here
    // ('head' and 'p') have 50/50 successor splits, so both are
    // rejected as singleton traces. Released (the fix), they are
    // absorbed by the colder seeds that follow — [latch, head] and
    // [q, p]; stranded in `taken` (the bug), no trace can form at
    // all and the hot loop gets zero coverage.
    auto m = parseAssembly(R"(
int %main() {
entry:
    br label %head
head:
    %i = phi int [ 0, %entry ], [ %i2, %latch ]
    %acc = phi int [ 0, %entry ], [ %acc2, %latch ]
    %firsthalf = setlt int %i, 500
    br bool %firsthalf, label %q, label %direct
q:
    %qv = add int %acc, 3
    br label %p
direct:
    %dv = add int %acc, 5
    br label %p
p:
    %pv = phi int [ %qv, %q ], [ %dv, %direct ]
    %bit = rem int %i, 2
    %odd = seteq int %bit, 1
    br bool %odd, label %r, label %s
r:
    %rv = add int %pv, 1
    br label %latch
s:
    %sv = mul int %pv, 1
    br label %latch
latch:
    %acc2 = phi int [ %rv, %r ], [ %sv, %s ]
    %i2 = add int %i, 1
    %more = setlt int %i2, 1000
    br bool %more, label %head, label %out
out:
    ret int %acc2
}
)").orDie();
    verifyOrDie(*m);
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(f);

    auto traces = formTraces(*f, profile);
    ASSERT_FALSE(traces.empty());
    std::set<const BasicBlock *> covered;
    for (const Trace &t : traces)
        for (const BasicBlock *bb : t.blocks)
            covered.insert(bb);
    // The rejected-then-released seeds must appear inside the
    // colder seeds' traces.
    EXPECT_TRUE(covered.count(f->findBlock("head")))
        << "'head' stranded by its rejected singleton trace";
    EXPECT_TRUE(covered.count(f->findBlock("p")))
        << "'p' stranded by its rejected singleton trace";
}

TEST(Trace, LayoutKeepsSemanticsAndEntryBlock)
{
    auto m = parseAssembly(kBiasedLoop).orDie();
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    auto before = interp.run(f);

    auto traces = formTraces(*f, profile);
    applyTraceLayout(*f, traces);
    verifyOrDie(*m);
    EXPECT_EQ(f->entryBlock()->name(), "entry");

    ExecutionContext ctx2(*m);
    Interpreter interp2(ctx2);
    auto after = interp2.run(f);
    EXPECT_EQ(after.value.i, before.value.i);
}

TEST(Trace, LayoutReducesExecutedBranches)
{
    // The measurable payoff (Section 4.2's runtime reoptimization):
    // after trace layout, fallthrough elision deletes the hot
    // path's jumps, so the simulator executes fewer instructions.
    auto run = [](Module &m) {
        ExecutionContext ctx(m);
        CodeManager cm(*getTarget("sparc"));
        MachineSimulator sim(ctx, cm);
        auto r = sim.run(m.getFunction("main"));
        EXPECT_TRUE(r.ok());
        return std::make_pair(sim.instructionsExecuted(),
                              static_cast<int64_t>(r.value.i));
    };

    auto m1 = parseAssembly(kBiasedLoop).orDie();
    auto [base_insts, base_val] = run(*m1);

    auto m2 = parseAssembly(kBiasedLoop).orDie();
    Function *f = m2->getFunction("main");
    {
        ExecutionContext ctx(*m2);
        Interpreter interp(ctx);
        EdgeProfile profile;
        interp.setProfile(&profile);
        interp.run(f);
        applyTraceLayout(*f, formTraces(*f, profile));
        verifyOrDie(*m2);
    }
    auto [opt_insts, opt_val] = run(*m2);

    EXPECT_EQ(opt_val, base_val);
    EXPECT_LT(opt_insts, base_insts);
}

TEST(Trace, OptionsControlFormation)
{
    auto m = parseAssembly(kBiasedLoop).orDie();
    Function *f = m->getFunction("main");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(f);

    TraceOptions strict;
    strict.hotThreshold = 100000; // nothing is that hot
    EXPECT_TRUE(formTraces(*f, profile, strict).empty());

    TraceOptions shorty;
    shorty.maxLength = 2;
    for (const Trace &t : formTraces(*f, profile, shorty))
        EXPECT_LE(t.length(), 2u);
}

TEST(Trace, CrossProcedureProfiles)
{
    // Profiles span functions (the paper gathers cross-procedure
    // traces); per-function formation must only use its own blocks.
    auto m = parseAssembly(R"(
internal int %callee(int %x) {
entry:
    br label %body
body:
    %r = add int %x, 1
    ret int %r
}
int %main() {
entry:
    br label %loop
loop:
    %i = phi int [ 0, %entry ], [ %i2, %loop ]
    %i2 = call int %callee(int %i)
    %c = setlt int %i2, 500
    br bool %c, label %loop, label %out
out:
    ret int %i2
}
)").orDie();
    Function *main = m->getFunction("main");
    Function *callee = m->getFunction("callee");
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    EdgeProfile profile;
    interp.setProfile(&profile);
    interp.run(main);

    for (const Trace &t : formTraces(*main, profile))
        for (BasicBlock *bb : t.blocks)
            EXPECT_EQ(bb->parent(), main);
    for (const Trace &t : formTraces(*callee, profile))
        for (BasicBlock *bb : t.blocks)
            EXPECT_EQ(bb->parent(), callee);
}
