/**
 * @file
 * Transform tests: each pass's core behaviour, pipeline-level
 * verification after every pass, and semantic preservation
 * (interpreter result equality) as a property check over the
 * workload suite at every optimization level.
 */

#include <gtest/gtest.h>

#include "ir/instructions.h"
#include "parser/parser.h"
#include "transforms/const_fold.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "workloads/workloads.h"

using namespace llva;

namespace {

std::unique_ptr<Module>
runPass(const std::string &src, std::unique_ptr<FunctionPass> pass,
        bool *changed = nullptr)
{
    auto m = parseAssembly(src).orDie();
    verifyOrDie(*m);
    PassManager pm;
    pm.setVerifyEach(true);
    pm.add(std::move(pass));
    bool c = pm.run(*m);
    if (changed)
        *changed = c;
    return m;
}

size_t
countOpcode(const Function &f, Opcode op)
{
    size_t n = 0;
    for (const auto &bb : f)
        for (const auto &inst : *bb)
            if (inst->opcode() == op)
                ++n;
    return n;
}

} // namespace

TEST(Mem2Reg, PromotesScalarsToPhis)
{
    auto m = runPass(R"(
int %sum(int %n) {
entry:
    %acc = alloca int
    %i = alloca int
    store int 0, int* %acc
    store int 0, int* %i
    br label %cond
cond:
    %iv = load int* %i
    %c = setlt int %iv, %n
    br bool %c, label %body, label %exit
body:
    %a = load int* %acc
    %a2 = add int %a, %iv
    store int %a2, int* %acc
    %i2 = add int %iv, 1
    store int %i2, int* %i
    br label %cond
exit:
    %r = load int* %acc
    ret int %r
}
)",
                     createMem2RegPass());
    Function *f = m->getFunction("sum");
    EXPECT_EQ(countOpcode(*f, Opcode::Alloca), 0u);
    EXPECT_EQ(countOpcode(*f, Opcode::Load), 0u);
    EXPECT_EQ(countOpcode(*f, Opcode::Store), 0u);
    EXPECT_EQ(countOpcode(*f, Opcode::Phi), 2u);
}

TEST(Mem2Reg, SkipsEscapingAllocas)
{
    auto m = runPass(R"(
declare void %use(int* %p)
int %f() {
entry:
    %a = alloca int
    store int 5, int* %a
    call void %use(int* %a)
    %v = load int* %a
    ret int %v
}
)",
                     createMem2RegPass());
    // %a's address escapes into a call: must not be promoted.
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Alloca), 1u);
}

TEST(Mem2Reg, SingleBlockPromotion)
{
    bool changed = false;
    auto m = runPass(R"(
int %f(int %x) {
entry:
    %t = alloca int
    store int %x, int* %t
    %v = load int* %t
    %w = add int %v, 1
    ret int %w
}
)",
                     createMem2RegPass(), &changed);
    EXPECT_TRUE(changed);
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Alloca), 0u);
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Phi), 0u);
}

TEST(SCCP, FoldsConstantBranches)
{
    auto m = runPass(R"(
int %f() {
entry:
    %a = add int 20, 22
    %c = setgt int %a, 10
    br bool %c, label %t, label %e
t:
    ret int %a
e:
    ret int 0
}
)",
                     createSCCPPass());
    // %a and %c become constants; the taken ret returns 42.
    Function *f = m->getFunction("f");
    auto *ret = dyn_cast<ReturnInst>(
        f->findBlock("t")->terminator());
    ASSERT_NE(ret, nullptr);
    auto *c = dyn_cast<ConstantInt>(ret->returnValue());
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->sext(), 42);
}

TEST(SCCP, PropagatesThroughPhis)
{
    auto m = runPass(R"(
int %f(bool %c) {
entry:
    br bool %c, label %a, label %b
a:
    br label %join
b:
    br label %join
join:
    %p = phi int [ 7, %a ], [ 7, %b ]
    %q = mul int %p, 3
    ret int %q
}
)",
                     createSCCPPass());
    auto *ret = dyn_cast<ReturnInst>(
        m->getFunction("f")->findBlock("join")->terminator());
    auto *c = dyn_cast<ConstantInt>(ret->returnValue());
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->sext(), 21);
}

TEST(SCCP, NeverFoldsTrappingDivide)
{
    auto m = runPass(R"(
int %f() {
entry:
    %d = div int 10, 0
    ret int %d
}
)",
                     createSCCPPass());
    // Division by zero traps (ExceptionsEnabled default true) and
    // must survive as an instruction.
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Div), 1u);
}

TEST(ConstFold, RespectsSignedness)
{
    Module m("t");
    TypeContext &tc = m.types();
    // -1 < 0 signed, but 255 > 0 as ubyte.
    Constant *a = m.constantInt(tc.sbyteTy(), 0xff);
    Constant *b = m.constantInt(tc.sbyteTy(), 0);
    auto *lt = cast<ConstantInt>(
        foldBinary(m, Opcode::SetLT, a, b));
    EXPECT_TRUE(lt->isOne());

    Constant *ua = m.constantInt(tc.ubyteTy(), 0xff);
    Constant *ub = m.constantInt(tc.ubyteTy(), 0);
    auto *ult = cast<ConstantInt>(
        foldBinary(m, Opcode::SetLT, ua, ub));
    EXPECT_TRUE(ult->isZero());
}

TEST(ConstFold, WrapsAtWidth)
{
    Module m("t");
    TypeContext &tc = m.types();
    Constant *a = m.constantInt(tc.ubyteTy(), 200);
    Constant *b = m.constantInt(tc.ubyteTy(), 100);
    auto *sum =
        cast<ConstantInt>(foldBinary(m, Opcode::Add, a, b));
    EXPECT_EQ(sum->zext(), 44u); // 300 mod 256
}

TEST(ConstFold, ShiftSemantics)
{
    Module m("t");
    TypeContext &tc = m.types();
    // shr on signed types is arithmetic; on unsigned, logical.
    Constant *neg = m.constantInt(tc.intTy(), 0xfffffff0);
    Constant *sh = m.constantInt(tc.ubyteTy(), 2);
    auto *sar =
        cast<ConstantInt>(foldBinary(m, Opcode::Shr, neg, sh));
    EXPECT_EQ(sar->sext(), -4);

    Constant *uneg = m.constantInt(tc.uintTy(), 0xfffffff0);
    auto *shr =
        cast<ConstantInt>(foldBinary(m, Opcode::Shr, uneg, sh));
    EXPECT_EQ(shr->zext(), 0x3ffffffcu);
}

TEST(ConstFold, CastConversions)
{
    Module m("t");
    TypeContext &tc = m.types();
    auto *trunc = cast<ConstantInt>(foldCast(
        m, m.constantInt(tc.intTy(), 0x1ff), tc.ubyteTy()));
    EXPECT_EQ(trunc->zext(), 0xffu);

    auto *tofp = cast<ConstantFP>(
        foldCast(m, m.constantInt(tc.intTy(), -3), tc.doubleTy()));
    EXPECT_EQ(tofp->value(), -3.0);

    auto *toint = cast<ConstantInt>(foldCast(
        m, m.constantFP(tc.doubleTy(), 2.9), tc.intTy()));
    EXPECT_EQ(toint->sext(), 2);

    auto *toBool = cast<ConstantInt>(foldCast(
        m, m.constantInt(tc.intTy(), 7), tc.boolTy()));
    EXPECT_TRUE(toBool->isOne());
}

TEST(DCE, RemovesDeadPureCode)
{
    auto m = runPass(R"(
int %f(int %x) {
entry:
    %dead1 = mul int %x, 100
    %dead2 = add int %dead1, 5
    %live = add int %x, 1
    ret int %live
}
)",
                     createDCEPass());
    EXPECT_EQ(m->getFunction("f")->instructionCount(), 2u);
}

TEST(DCE, KeepsTrappingAndSideEffects)
{
    auto m = runPass(R"(
declare void %ext()
int %f(int %x, int* %p) {
entry:
    %dead_load = load int* %p
    %quiet = div int %x, %x !ee(false)
    call void %ext()
    ret int %x
}
)",
                     createDCEPass());
    Function *f = m->getFunction("f");
    // The trapping load stays; the ee(false) div dies; call stays.
    EXPECT_EQ(countOpcode(*f, Opcode::Load), 1u);
    EXPECT_EQ(countOpcode(*f, Opcode::Div), 0u);
    EXPECT_EQ(countOpcode(*f, Opcode::Call), 1u);
}

TEST(ADCE, RemovesDeadCycles)
{
    auto m = runPass(R"(
int %f(int %n) {
entry:
    br label %loop
loop:
    %dead = phi int [ 0, %entry ], [ %dead2, %loop ]
    %live = phi int [ 0, %entry ], [ %live2, %loop ]
    %dead2 = add int %dead, 3
    %live2 = add int %live, 1
    %c = setlt int %live2, %n
    br bool %c, label %loop, label %out
out:
    ret int %live2
}
)",
                     createADCEPass());
    Function *f = m->getFunction("f");
    // The dead phi/add cycle is removed; simple DCE cannot do this.
    EXPECT_EQ(countOpcode(*f, Opcode::Phi), 1u);
}

TEST(GVN, EliminatesCommonSubexpressions)
{
    auto m = runPass(R"(
int %f(int %a, int %b) {
entry:
    %x = add int %a, %b
    %y = add int %a, %b
    %z = add int %x, %y
    ret int %z
}
)",
                     createGVNPass());
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Add), 2u);
}

TEST(GVN, CommutativeCanonicalization)
{
    auto m = runPass(R"(
int %f(int %a, int %b) {
entry:
    %x = add int %a, %b
    %y = add int %b, %a
    %z = add int %x, %y
    ret int %z
}
)",
                     createGVNPass());
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Add), 2u);
}

TEST(GVN, DominatorScoped)
{
    bool changed = false;
    auto m = runPass(R"(
int %f(int %a, bool %c) {
entry:
    br bool %c, label %l, label %r
l:
    %x = mul int %a, %a
    br label %join
r:
    %y = mul int %a, %a
    br label %join
join:
    %p = phi int [ %x, %l ], [ %y, %r ]
    ret int %p
}
)",
                     createGVNPass(), &changed);
    // Neither mul dominates the other: both must remain.
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Mul), 2u);
}

TEST(GVN, RedundantLoadElimination)
{
    auto m = runPass(R"(
int %f(int* %p) {
entry:
    %a = load int* %p
    %b = load int* %p
    %s = add int %a, %b
    ret int %s
}
)",
                     createGVNPass());
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Load), 1u);
}

TEST(GVN, StoreToLoadForwarding)
{
    auto m = runPass(R"(
int %f(int* %p, int %v) {
entry:
    store int %v, int* %p
    %a = load int* %p
    ret int %a
}
)",
                     createGVNPass());
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Load), 0u);
}

TEST(GVN, ClobberedLoadNotForwarded)
{
    auto m = runPass(R"(
int %f(int* %p, int* %q, int %v) {
entry:
    %a = load int* %p
    store int %v, int* %q
    %b = load int* %p
    %s = add int %a, %b
    ret int %s
}
)",
                     createGVNPass());
    // %q may alias %p (both arguments): the second load stays.
    EXPECT_EQ(countOpcode(*m->getFunction("f"), Opcode::Load), 2u);
}

TEST(InstCombine, AlgebraicIdentities)
{
    auto m = runPass(R"(
int %f(int %x) {
entry:
    %a = add int %x, 0
    %b = mul int %a, 1
    %c = sub int %b, 0
    %d = or int %c, 0
    %e = xor int %d, 0
    ret int %e
}
)",
                     createInstCombinePass());
    // Everything folds to %x.
    EXPECT_EQ(m->getFunction("f")->instructionCount(), 1u);
}

TEST(InstCombine, StrengthReduction)
{
    auto m = runPass(R"(
uint %f(uint %x) {
entry:
    %a = mul uint %x, 8
    %b = div uint %a, 4
    ret uint %b
}
)",
                     createInstCombinePass());
    Function *f = m->getFunction("f");
    EXPECT_EQ(countOpcode(*f, Opcode::Mul), 0u);
    EXPECT_EQ(countOpcode(*f, Opcode::Div), 0u);
    EXPECT_EQ(countOpcode(*f, Opcode::Shl), 1u);
    EXPECT_EQ(countOpcode(*f, Opcode::Shr), 1u);
}

TEST(InstCombine, SelfComparisons)
{
    auto m = runPass(R"(
bool %f(int %x) {
entry:
    %a = seteq int %x, %x
    %b = setlt int %x, %x
    %c = xor bool %a, %b
    ret bool %c
}
)",
                     createInstCombinePass());
    auto *ret = dyn_cast<ReturnInst>(
        m->getFunction("f")->entryBlock()->terminator());
    auto *c = dyn_cast<ConstantInt>(ret->returnValue());
    ASSERT_NE(c, nullptr);
    EXPECT_TRUE(c->isOne()); // true xor false
}

TEST(SimplifyCFG, FoldsConstantBranch)
{
    auto m = runPass(R"(
int %f() {
entry:
    br bool true, label %a, label %b
a:
    ret int 1
b:
    ret int 2
}
)",
                     createSimplifyCFGPass());
    // entry+a merge; b is unreachable and removed.
    EXPECT_EQ(m->getFunction("f")->size(), 1u);
}

TEST(SimplifyCFG, RemovesUnreachableAndMergesChains)
{
    auto m = runPass(R"(
int %f(int %x) {
entry:
    br label %step1
step1:
    %a = add int %x, 1
    br label %step2
step2:
    %b = mul int %a, 2
    ret int %b
dead1:
    br label %dead2
dead2:
    br label %dead1
}
)",
                     createSimplifyCFGPass());
    Function *f = m->getFunction("f");
    EXPECT_EQ(f->size(), 1u);
    EXPECT_EQ(f->instructionCount(), 3u);
}

TEST(SimplifyCFG, FoldsConstantMBr)
{
    auto m = runPass(R"(
int %f() {
entry:
    mbr int 2, label %def [ int 1, label %one, int 2, label %two ]
one:
    ret int 10
two:
    ret int 20
def:
    ret int 0
}
)",
                     createSimplifyCFGPass());
    Function *f = m->getFunction("f");
    EXPECT_EQ(f->size(), 1u);
    auto *ret =
        dyn_cast<ReturnInst>(f->entryBlock()->terminator());
    EXPECT_EQ(cast<ConstantInt>(ret->returnValue())->sext(), 20);
}

TEST(Inliner, InlinesSmallCallee)
{
    auto m = parseAssembly(R"(
internal int %sq(int %x) {
entry:
    %r = mul int %x, %x
    ret int %r
}
int %main(int %v) {
entry:
    %a = call int %sq(int %v)
    %b = call int %sq(int %a)
    ret int %b
}
)").orDie();
    PassManager pm;
    pm.setVerifyEach(true);
    pm.add(createInlinerPass());
    EXPECT_TRUE(pm.run(*m));
    Function *main = m->getFunction("main");
    EXPECT_EQ(countOpcode(*main, Opcode::Call), 0u);
    EXPECT_EQ(countOpcode(*main, Opcode::Mul), 2u);
}

TEST(Inliner, MultiReturnCalleeGetsPhi)
{
    auto m = parseAssembly(R"(
internal int %pick(bool %c) {
entry:
    br bool %c, label %a, label %b
a:
    ret int 1
b:
    ret int 2
}
int %main(bool %c) {
entry:
    %r = call int %pick(bool %c)
    %s = add int %r, 10
    ret int %s
}
)").orDie();
    PassManager pm;
    pm.setVerifyEach(true);
    pm.add(createInlinerPass());
    EXPECT_TRUE(pm.run(*m));
    Function *main = m->getFunction("main");
    EXPECT_EQ(countOpcode(*main, Opcode::Call), 0u);
    EXPECT_GE(countOpcode(*main, Opcode::Phi), 1u);
}

TEST(Inliner, SkipsRecursiveCallee)
{
    auto m = parseAssembly(R"(
internal int %fact(int %n) {
entry:
    %z = setle int %n, 1
    br bool %z, label %base, label %rec
base:
    ret int 1
rec:
    %n1 = sub int %n, 1
    %r = call int %fact(int %n1)
    %p = mul int %r, %n
    ret int %p
}
int %main() {
entry:
    %r = call int %fact(int 5)
    ret int %r
}
)").orDie();
    PassManager pm;
    pm.add(createInlinerPass());
    pm.run(*m);
    EXPECT_EQ(countOpcode(*m->getFunction("main"), Opcode::Call),
              1u);
}

// Property check: every optimization level preserves workload
// semantics (checksum and output), with verification after every
// pass. Parameterized over the suite.
class OptSemantics
    : public ::testing::TestWithParam<
          std::tuple<std::string, unsigned>>
{};

TEST_P(OptSemantics, PreservesChecksumAndOutput)
{
    const std::string &name = std::get<0>(GetParam());
    unsigned level = std::get<1>(GetParam());
    auto m0 = buildWorkload(name, 1);
    ExecutionContext ctx0(*m0);
    Interpreter i0(ctx0);
    i0.setInstructionLimit(100000000);
    auto r0 = i0.run(m0->getFunction("main"));
    ASSERT_TRUE(r0.ok());

    auto m1 = buildWorkload(name, 1);
    PassManager pm;
    pm.setVerifyEach(true);
    addStandardPasses(pm, level);
    pm.run(*m1);

    ExecutionContext ctx1(*m1);
    Interpreter i1(ctx1);
    i1.setInstructionLimit(100000000);
    auto r1 = i1.run(m1->getFunction("main"));
    ASSERT_TRUE(r1.ok());
    EXPECT_EQ(r1.value.i, r0.value.i);
    EXPECT_EQ(ctx1.output(), ctx0.output());
    if (level >= 1) {
        // Optimization may duplicate code (inlining) but must stay
        // within a small factor of the original.
        EXPECT_LE(m1->instructionCount(),
                  m0->instructionCount() * 3);
    }
}

static std::vector<std::tuple<std::string, unsigned>>
optSemanticsCases()
{
    std::vector<std::tuple<std::string, unsigned>> cases;
    for (const auto &info : allWorkloads())
        for (unsigned level : {1u, 2u})
            cases.emplace_back(info.name, level);
    return cases;
}

static std::string
optSemanticsName(
    const ::testing::TestParamInfo<std::tuple<std::string, unsigned>>
        &info)
{
    std::string s = std::get<0>(info.param);
    for (char &c : s)
        if (!isalnum(static_cast<unsigned char>(c)))
            c = '_';
    return s + "_O" + std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(Workloads, OptSemantics,
                         ::testing::ValuesIn(optSemanticsCases()),
                         optSemanticsName);
