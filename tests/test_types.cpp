/**
 * @file
 * Unit tests for the LLVA type system: interning, layout (sizes,
 * alignment, struct field offsets under both pointer sizes — the
 * paper's Section 3.1 example expects T[0].Children[3] at offset 20
 * with 32-bit pointers and 32 with 64-bit pointers), and printing.
 */

#include <gtest/gtest.h>

#include "ir/type.h"

using namespace llva;

class TypeTest : public ::testing::Test
{
  protected:
    TypeContext tc;
};

TEST_F(TypeTest, PrimitivesAreInterned)
{
    EXPECT_EQ(tc.intTy(), tc.intTy());
    EXPECT_EQ(tc.doubleTy(), tc.doubleTy());
    EXPECT_NE(tc.intTy(), tc.uintTy());
    EXPECT_NE(tc.floatTy(), tc.doubleTy());
}

TEST_F(TypeTest, PrimitiveProperties)
{
    EXPECT_TRUE(tc.intTy()->isInteger());
    EXPECT_TRUE(tc.intTy()->isSignedInteger());
    EXPECT_TRUE(tc.uintTy()->isUnsignedInteger());
    EXPECT_FALSE(tc.uintTy()->isSignedInteger());
    EXPECT_TRUE(tc.doubleTy()->isFloatingPoint());
    EXPECT_TRUE(tc.boolTy()->isBool());
    EXPECT_FALSE(tc.boolTy()->isInteger());
    EXPECT_TRUE(tc.voidTy()->isVoid());
    EXPECT_FALSE(tc.voidTy()->isScalar());
    EXPECT_TRUE(tc.intTy()->isScalar());
}

TEST_F(TypeTest, PrimitiveSizes)
{
    EXPECT_EQ(tc.boolTy()->sizeInBytes(8), 1u);
    EXPECT_EQ(tc.ubyteTy()->sizeInBytes(8), 1u);
    EXPECT_EQ(tc.shortTy()->sizeInBytes(8), 2u);
    EXPECT_EQ(tc.intTy()->sizeInBytes(8), 4u);
    EXPECT_EQ(tc.longTy()->sizeInBytes(8), 8u);
    EXPECT_EQ(tc.floatTy()->sizeInBytes(8), 4u);
    EXPECT_EQ(tc.doubleTy()->sizeInBytes(8), 8u);
}

TEST_F(TypeTest, IntegerBitWidths)
{
    EXPECT_EQ(tc.boolTy()->integerBitWidth(), 1u);
    EXPECT_EQ(tc.sbyteTy()->integerBitWidth(), 8u);
    EXPECT_EQ(tc.ushortTy()->integerBitWidth(), 16u);
    EXPECT_EQ(tc.intTy()->integerBitWidth(), 32u);
    EXPECT_EQ(tc.ulongTy()->integerBitWidth(), 64u);
    EXPECT_EQ(tc.doubleTy()->integerBitWidth(), 0u);
}

TEST_F(TypeTest, PointerSizeDependsOnTarget)
{
    PointerType *p = tc.pointerTo(tc.intTy());
    EXPECT_EQ(p->sizeInBytes(4), 4u);
    EXPECT_EQ(p->sizeInBytes(8), 8u);
}

TEST_F(TypeTest, PointersAreInterned)
{
    EXPECT_EQ(tc.pointerTo(tc.intTy()), tc.pointerTo(tc.intTy()));
    EXPECT_NE(tc.pointerTo(tc.intTy()), tc.pointerTo(tc.uintTy()));
    EXPECT_EQ(tc.pointerTo(tc.intTy())->pointee(), tc.intTy());
}

TEST_F(TypeTest, ArraysAreInterned)
{
    ArrayType *a = tc.arrayOf(tc.intTy(), 10);
    EXPECT_EQ(a, tc.arrayOf(tc.intTy(), 10));
    EXPECT_NE(a, tc.arrayOf(tc.intTy(), 11));
    EXPECT_EQ(a->numElements(), 10u);
    EXPECT_EQ(a->sizeInBytes(8), 40u);
}

TEST_F(TypeTest, AnonymousStructsInternStructurally)
{
    StructType *s1 = tc.structOf({tc.intTy(), tc.doubleTy()});
    StructType *s2 = tc.structOf({tc.intTy(), tc.doubleTy()});
    EXPECT_EQ(s1, s2);
    EXPECT_NE(s1, tc.structOf({tc.doubleTy(), tc.intTy()}));
}

TEST_F(TypeTest, NamedStructsAreNominal)
{
    StructType *a = tc.namedStruct("A", {tc.intTy()});
    StructType *b = tc.namedStruct("B", {tc.intTy()});
    EXPECT_NE(a, b);
    EXPECT_EQ(tc.namedType("A"), a);
    EXPECT_EQ(tc.namedType("C"), nullptr);
}

TEST_F(TypeTest, StructFieldOffsetsRespectAlignment)
{
    // { ubyte, int, ubyte, double }
    StructType *s = tc.structOf(
        {tc.ubyteTy(), tc.intTy(), tc.ubyteTy(), tc.doubleTy()});
    EXPECT_EQ(s->fieldOffset(0, 8), 0u);
    EXPECT_EQ(s->fieldOffset(1, 8), 4u);  // int aligned to 4
    EXPECT_EQ(s->fieldOffset(2, 8), 8u);
    EXPECT_EQ(s->fieldOffset(3, 8), 16u); // double aligned to 8
    EXPECT_EQ(s->sizeInBytes(8), 24u);
    EXPECT_EQ(s->alignment(8), 8u);
}

TEST_F(TypeTest, PaperQuadTreeOffsets)
{
    // %struct.QuadTree = { double, [4 x %struct.QuadTree*] }
    // The paper: &T[0].Children[3] is +20 bytes with 32-bit pointers
    // and +32 bytes with 64-bit pointers.
    StructType *qt = tc.namedStruct("struct.QuadTree", {});
    qt->setBody({tc.doubleTy(), tc.arrayOf(tc.pointerTo(qt), 4)});

    EXPECT_EQ(qt->fieldOffset(1, 4) + 3 * 4, 20u);
    EXPECT_EQ(qt->fieldOffset(1, 8) + 3 * 8, 32u);
    EXPECT_EQ(qt->sizeInBytes(4), 24u);
    EXPECT_EQ(qt->sizeInBytes(8), 40u);
}

TEST_F(TypeTest, RecursiveStructSizeTerminates)
{
    StructType *node = tc.namedStruct("node", {});
    node->setBody({tc.longTy(), tc.pointerTo(node)});
    EXPECT_EQ(node->sizeInBytes(8), 16u);
}

TEST_F(TypeTest, FunctionTypesIntern)
{
    FunctionType *f1 =
        tc.functionOf(tc.intTy(), {tc.intTy(), tc.doubleTy()});
    FunctionType *f2 =
        tc.functionOf(tc.intTy(), {tc.intTy(), tc.doubleTy()});
    EXPECT_EQ(f1, f2);
    EXPECT_NE(f1, tc.functionOf(tc.intTy(), {tc.intTy()}));
    EXPECT_NE(f1, tc.functionOf(tc.intTy(),
                                {tc.intTy(), tc.doubleTy()}, true));
    EXPECT_EQ(f1->returnType(), tc.intTy());
    EXPECT_EQ(f1->numParams(), 2u);
}

TEST_F(TypeTest, TypePrinting)
{
    EXPECT_EQ(tc.intTy()->str(), "int");
    EXPECT_EQ(tc.pointerTo(tc.doubleTy())->str(), "double*");
    EXPECT_EQ(tc.arrayOf(tc.ubyteTy(), 6)->str(), "[6 x ubyte]");
    EXPECT_EQ(tc.structOf({tc.intTy(), tc.boolTy()})->str(),
              "{ int, bool }");
    StructType *named = tc.namedStruct("struct.T", {tc.intTy()});
    EXPECT_EQ(named->str(), "%struct.T");
    EXPECT_EQ(tc.pointerTo(named)->str(), "%struct.T*");
    EXPECT_EQ(tc.functionOf(tc.voidTy(), {tc.intTy()})->str(),
              "void (int)");
    EXPECT_EQ(
        tc.functionOf(tc.intTy(), {tc.intTy()}, true)->str(),
        "int (int, ...)");
}

TEST_F(TypeTest, EmptyStruct)
{
    StructType *s = tc.structOf({});
    EXPECT_EQ(s->sizeInBytes(8), 0u);
    EXPECT_EQ(s->numFields(), 0u);
}

TEST_F(TypeTest, NestedArrays)
{
    ArrayType *grid = tc.arrayOf(tc.arrayOf(tc.intTy(), 4), 3);
    EXPECT_EQ(grid->sizeInBytes(8), 48u);
    EXPECT_EQ(grid->str(), "[3 x [4 x int]]");
}

TEST_F(TypeTest, PrimByName)
{
    EXPECT_EQ(tc.primByName("int"), tc.intTy());
    EXPECT_EQ(tc.primByName("ulong"), tc.ulongTy());
    EXPECT_EQ(tc.primByName("label"), tc.labelTy());
    EXPECT_EQ(tc.primByName("quux"), nullptr);
}
