/**
 * @file
 * Verifier tests: each structural/type/SSA rule is violated via
 * direct IR construction and must be diagnosed.
 */

#include <gtest/gtest.h>

#include "ir/ir_builder.h"
#include "parser/parser.h"
#include "verifier/verifier.h"

using namespace llva;

namespace {

/** Expect a verifier error whose text contains \p needle. */
void
expectError(const Module &m, const std::string &needle)
{
    VerifyResult r = verifyModule(m);
    ASSERT_FALSE(r.ok()) << "expected error containing '" << needle
                         << "'";
    bool found = false;
    for (const auto &e : r.errors)
        if (e.find(needle) != std::string::npos)
            found = true;
    EXPECT_TRUE(found) << "errors were:\n" << r.str();
}

} // namespace

TEST(Verifier, AcceptsValidModule)
{
    auto m = parseAssembly(R"(
int %f(int %x) {
entry:
    %c = setlt int %x, 10
    br bool %c, label %a, label %b
a:
    ret int 1
b:
    ret int 2
}
)").orDie();
    EXPECT_TRUE(verifyModule(*m).ok());
}

TEST(Verifier, MissingTerminator)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f =
        m.createFunction(tc.functionOf(tc.voidTy(), {}), "f");
    BasicBlock *bb = f->createBlock("entry");
    IRBuilder b(m, bb);
    b.add(b.cInt(1), b.cInt(2), "x"); // no terminator
    expectError(m, "terminator");
}

TEST(Verifier, TerminatorMidBlock)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f =
        m.createFunction(tc.functionOf(tc.voidTy(), {}), "f");
    BasicBlock *bb = f->createBlock("entry");
    IRBuilder b(m, bb);
    b.retVoid();
    b.retVoid();
    expectError(m, "terminator");
}

TEST(Verifier, EmptyBlock)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f =
        m.createFunction(tc.functionOf(tc.voidTy(), {}), "f");
    f->createBlock("entry");
    expectError(m, "empty");
}

TEST(Verifier, BinaryTypeMismatch)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f = m.createFunction(
        tc.functionOf(tc.intTy(), {tc.intTy(), tc.longTy()}), "f");
    BasicBlock *bb = f->createBlock("entry");
    IRBuilder b(m, bb);
    // Force a mixed-type add via raw construction.
    auto *bad = new BinaryOperator(Opcode::Add, f->arg(0),
                                   f->arg(1));
    bb->append(std::unique_ptr<Instruction>(bad));
    b.ret(bad);
    expectError(m, "differ");
}

TEST(Verifier, ShiftAmountMustBeUByte)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f = m.createFunction(
        tc.functionOf(tc.intTy(), {tc.intTy()}), "f");
    BasicBlock *bb = f->createBlock("entry");
    IRBuilder b(m, bb);
    auto *bad = new BinaryOperator(Opcode::Shl, f->arg(0),
                                   b.cInt(2)); // int shift amount
    bb->append(std::unique_ptr<Instruction>(bad));
    b.ret(bad);
    expectError(m, "ubyte");
}

TEST(Verifier, BranchConditionMustBeBool)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f = m.createFunction(
        tc.functionOf(tc.voidTy(), {tc.intTy()}), "f");
    BasicBlock *bb = f->createBlock("entry");
    BasicBlock *a = f->createBlock("a");
    BasicBlock *c = f->createBlock("c");
    IRBuilder b(m, bb);
    bb->append(std::make_unique<BranchInst>(tc, f->arg(0), a, c));
    b.setInsertPoint(a);
    b.retVoid();
    b.setInsertPoint(c);
    b.retVoid();
    expectError(m, "bool");
}

TEST(Verifier, ReturnTypeMismatch)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f =
        m.createFunction(tc.functionOf(tc.intTy(), {}), "f");
    BasicBlock *bb = f->createBlock("entry");
    bb->append(std::make_unique<ReturnInst>(tc)); // void ret
    expectError(m, "return");
}

TEST(Verifier, UseNotDominatedByDef)
{
    auto m = parseAssembly(R"(
int %f(bool %c) {
entry:
    br bool %c, label %a, label %b
a:
    %x = add int 1, 2
    br label %join
b:
    br label %join
join:
    %y = add int %x, 1
    ret int %y
}
)").orDie();
    expectError(*m, "dominated");
}

TEST(Verifier, PhiMissingPredecessor)
{
    auto m = parseAssembly(R"(
int %f(bool %c) {
entry:
    br bool %c, label %a, label %join
a:
    br label %join
join:
    %p = phi int [ 1, %a ]
    ret int %p
}
)").orDie();
    expectError(*m, "missing incoming");
}

TEST(Verifier, PhiFromNonPredecessor)
{
    auto m = parseAssembly(R"(
int %f(bool %c) {
entry:
    br bool %c, label %a, label %join
a:
    br label %join
other:
    br label %join
join:
    %p = phi int [ 1, %a ], [ 2, %entry ], [ 3, %other ]
    ret int %p
}
)").orDie();
    // %other is unreachable but still a CFG predecessor of %join, so
    // the phi is fine there; make one from a true non-pred.
    auto m2 = parseAssembly(R"(
int %f(bool %c) {
entry:
    br bool %c, label %a, label %join
a:
    br label %join
dead:
    ret int 9
join:
    %p = phi int [ 1, %a ], [ 2, %entry ], [ 3, %dead ]
    ret int %p
}
)").orDie();
    (void)m;
    expectError(*m2, "not a predecessor");
}

TEST(Verifier, PhiNotGrouped)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f = m.createFunction(
        tc.functionOf(tc.intTy(), {tc.boolTy()}), "f");
    BasicBlock *entry = f->createBlock("entry");
    BasicBlock *a = f->createBlock("a");
    BasicBlock *join = f->createBlock("join");
    IRBuilder b(m, entry);
    b.condBr(f->arg(0), a, join);
    b.setInsertPoint(a);
    b.br(join);
    b.setInsertPoint(join);
    Value *x = b.add(b.cInt(1), b.cInt(2), "x");
    PhiNode *p = b.phi(tc.intTy(), "p"); // after a non-phi
    p->addIncoming(x, a);
    p->addIncoming(b.cInt(0), entry);
    b.ret(p);
    expectError(m, "grouped");
}

TEST(Verifier, PhiInEntryBlock)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f =
        m.createFunction(tc.functionOf(tc.intTy(), {}), "f");
    BasicBlock *entry = f->createBlock("entry");
    IRBuilder b(m, entry);
    PhiNode *p = b.phi(tc.intTy(), "p");
    b.ret(p);
    expectError(m, "entry");
}

TEST(Verifier, CallArgumentMismatch)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *callee = m.createFunction(
        tc.functionOf(tc.intTy(), {tc.intTy()}), "callee");
    Function *f =
        m.createFunction(tc.functionOf(tc.intTy(), {}), "f");
    BasicBlock *bb = f->createBlock("entry");
    IRBuilder b(m, bb);
    auto *call = new CallInst(tc.intTy(), callee, {});
    bb->append(std::unique_ptr<Instruction>(call));
    b.ret(call);
    expectError(m, "argument count");
}

TEST(Verifier, MBrDuplicateCase)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f = m.createFunction(
        tc.functionOf(tc.intTy(), {tc.intTy()}), "f");
    BasicBlock *entry = f->createBlock("entry");
    BasicBlock *d = f->createBlock("d");
    IRBuilder b(m, entry);
    MBrInst *mbr = b.mbr(f->arg(0), d);
    mbr->addCase(m.constantInt(tc.intTy(), 3), d);
    mbr->addCase(m.constantInt(tc.intTy(), 3), d);
    b.setInsertPoint(d);
    b.ret(b.cInt(0));
    expectError(m, "duplicate case");
}

TEST(Verifier, StoreTypeMismatch)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f = m.createFunction(
        tc.functionOf(tc.voidTy(), {tc.longTy()}), "f");
    BasicBlock *bb = f->createBlock("entry");
    IRBuilder b(m, bb);
    Value *slot = b.alloca_(tc.intTy());
    bb->append(std::make_unique<StoreInst>(f->arg(0), slot));
    b.retVoid();
    expectError(m, "stored value");
}

TEST(Verifier, LoadOfAggregateRejected)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f =
        m.createFunction(tc.functionOf(tc.voidTy(), {}), "f");
    BasicBlock *bb = f->createBlock("entry");
    IRBuilder b(m, bb);
    Value *arr = b.alloca_(tc.arrayOf(tc.intTy(), 4));
    bb->append(std::make_unique<LoadInst>(arr));
    b.retVoid();
    expectError(m, "scalar");
}

TEST(Verifier, CastPointerToFPRejected)
{
    Module m("t");
    TypeContext &tc = m.types();
    Function *f = m.createFunction(
        tc.functionOf(tc.doubleTy(),
                      {tc.pointerTo(tc.intTy())}),
        "f");
    BasicBlock *bb = f->createBlock("entry");
    IRBuilder b(m, bb);
    Value *c = b.cast_(f->arg(0), tc.doubleTy());
    b.ret(c);
    expectError(m, "pointer and FP");
}

TEST(Verifier, EntryBlockWithPredecessorRejected)
{
    auto m = parseAssembly(R"(
void %f() {
entry:
    br label %entry
}
)").orDie();
    expectError(*m, "entry block has predecessors");
}
