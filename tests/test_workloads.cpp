/**
 * @file
 * Whole-suite differential tests: every workload must verify, and
 * the interpreter, the x86-like simulator, and the sparc-like
 * simulator (under both register allocators) must agree on the
 * checksum and the captured output — at O0 and through the full
 * bytecode round trip. This is the end-to-end guarantee that the
 * translator actually implements the V-ISA's semantics.
 */

#include <gtest/gtest.h>

#include "bytecode/bytecode.h"
#include "llee/fault_storage.h"
#include "llee/llee.h"
#include "parser/parser.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"
#include "workloads/workloads.h"

using namespace llva;

namespace {

struct Ref
{
    uint64_t value;
    std::string output;
    size_t llvaInsts;
};

Ref
reference(Module &m)
{
    ExecutionContext ctx(m);
    Interpreter interp(ctx);
    interp.setInstructionLimit(200000000);
    auto r = interp.run(m.getFunction("main"));
    EXPECT_TRUE(r.ok());
    return {r.value.i, ctx.output(), r.instructionsExecuted};
}

} // namespace

class WorkloadSuite : public ::testing::TestWithParam<std::string>
{
  protected:
    std::unique_ptr<Module>
    build()
    {
        return buildWorkload(GetParam(), 1);
    }
};

TEST_P(WorkloadSuite, Verifies)
{
    auto m = build();
    VerifyResult r = verifyModule(*m);
    EXPECT_TRUE(r.ok()) << r.str();
}

TEST_P(WorkloadSuite, PrintsAndReparses)
{
    auto m = build();
    std::string text = m->str();
    auto m2 = parseAssembly(text, GetParam()).orDie();
    EXPECT_EQ(m2->str(), text);
}

TEST_P(WorkloadSuite, EnginesAgree)
{
    auto m = build();
    Ref ref = reference(*m);
    for (const char *t : {"x86", "sparc"}) {
        for (auto alloc : {CodeGenOptions::Allocator::Local,
                           CodeGenOptions::Allocator::LinearScan}) {
            ExecutionContext ctx(*m);
            CodeGenOptions opts;
            opts.allocator = alloc;
            CodeManager cm(*getTarget(t), opts);
            MachineSimulator sim(ctx, cm);
            sim.setInstructionLimit(2000000000);
            auto r = sim.run(m->getFunction("main"));
            ASSERT_TRUE(r.ok())
                << t << " trap=" << trapKindName(r.trap);
            EXPECT_EQ(r.value.i, ref.value) << t;
            EXPECT_EQ(ctx.output(), ref.output) << t;
        }
    }
}

TEST_P(WorkloadSuite, BytecodeRoundTripPreservesBehaviour)
{
    auto m = build();
    Ref ref = reference(*m);
    auto m2 = readBytecode(writeBytecode(*m)).orDie();
    verifyOrDie(*m2);
    Ref ref2 = reference(*m2);
    EXPECT_EQ(ref2.value, ref.value);
    EXPECT_EQ(ref2.output, ref.output);
    EXPECT_EQ(ref2.llvaInsts, ref.llvaInsts);
}

TEST_P(WorkloadSuite, OptimizationReducesWork)
{
    auto m = build();
    Ref ref = reference(*m);

    auto m2 = buildWorkload(GetParam(), 1);
    PassManager pm;
    addStandardPasses(pm, 2);
    pm.run(*m2);
    verifyOrDie(*m2);
    Ref opt = reference(*m2);
    EXPECT_EQ(opt.value, ref.value);
    EXPECT_EQ(opt.output, ref.output);
    // The pipeline should never increase interpreted work by much
    // (inlining may duplicate a little; dynamic count must not
    // regress materially).
    EXPECT_LE(opt.llvaInsts, ref.llvaInsts + ref.llvaInsts / 10);
}

TEST_P(WorkloadSuite, FaultInjectedStorageMatchesBaseline)
{
    // The persistent-input boundary guarantee, end to end: under
    // any storage fault schedule — dead calls, torn writes, bit
    // flips, truncations — LLEE's observable behaviour is byte-
    // identical to running with no storage at all. Repeated runs
    // against the same faulty storage also exercise the
    // evict-and-retranslate path on entries damaged at rest.
    auto m = build();
    auto bc = writeBytecode(*m);

    LLEE baseline(*getTarget("sparc"), nullptr);
    LLEEResult want = baseline.execute(bc);
    ASSERT_TRUE(want.exec.ok()) << trapKindName(want.exec.trap);

    for (double rate : {0.0, 0.1, 0.5}) {
        MemoryStorage inner;
        FaultConfig cfg;
        cfg.seed = 0x5eed + static_cast<uint64_t>(rate * 100);
        cfg.failRate = rate;
        cfg.corruptRate = rate;
        FaultInjectingStorage faulty(inner, cfg);
        LLEE llee(*getTarget("sparc"), &faulty);
        for (int run = 0; run < 3; ++run) {
            LLEEResult r = llee.execute(bc);
            ASSERT_TRUE(r.exec.ok())
                << GetParam() << " rate " << rate << " run " << run
                << " trap=" << trapKindName(r.exec.trap);
            EXPECT_EQ(r.exec.value.i, want.exec.value.i)
                << GetParam() << " rate " << rate << " run " << run;
            EXPECT_EQ(r.output, want.output)
                << GetParam() << " rate " << rate << " run " << run;
        }
    }
}

TEST_P(WorkloadSuite, ExpansionRatioMatchesPaperShape)
{
    auto m = build();
    size_t llva = m->instructionCount();

    CodeGenOptions x86opts;
    x86opts.allocator = CodeGenOptions::Allocator::Local;
    CodeManager x86(*getTarget("x86"), x86opts);
    x86.translateAll(*m);
    double rx = static_cast<double>(x86.totalMachineInstructions()) /
                static_cast<double>(llva);

    CodeManager sparc(*getTarget("sparc"));
    sparc.translateAll(*m);
    double rs =
        static_cast<double>(sparc.totalMachineInstructions()) /
        static_cast<double>(llva);

    // Table 2: x86 2.2-3.3, sparc 2.3-4.2. Allow generous slack —
    // the shape that matters is "a few hardware ops per LLVA op".
    EXPECT_GT(rx, 1.5) << "x86 ratio";
    EXPECT_LT(rx, 5.0) << "x86 ratio";
    EXPECT_GT(rs, 1.5) << "sparc ratio";
    EXPECT_LT(rs, 6.0) << "sparc ratio";
}

TEST_P(WorkloadSuite, VirtualCodeSmallerThanNative)
{
    // Table 2's central size claim: LLVA object code is smaller
    // than native code (roughly 1.3x-2x for larger programs).
    auto m = build();
    size_t virtual_size = writeBytecode(*m).size();

    // Native executable = encoded code + global data image (the
    // virtual object file carries both, so the comparison must
    // too).
    CodeManager sparc(*getTarget("sparc"));
    sparc.translateAll(*m);
    size_t native_size = sparc.totalEncodedBytes();
    for (const auto &gv : m->globals())
        native_size +=
            gv->containedType()->sizeInBytes(m->pointerSize());
    EXPECT_LT(virtual_size, native_size) << GetParam();
}

static std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto &info : allWorkloads())
        names.push_back(info.name);
    return names;
}

INSTANTIATE_TEST_SUITE_P(All, WorkloadSuite,
                         ::testing::ValuesIn(workloadNames()),
                         [](const auto &info) {
                             std::string s = info.param;
                             for (char &c : s)
                                 if (!isalnum(
                                         static_cast<unsigned char>(
                                             c)))
                                     c = '_';
                             return s;
                         });
