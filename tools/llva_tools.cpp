/**
 * @file
 * The LLVA command-line tool set, in one multiplexed binary (each
 * tool is also installed under its own name via symlink-style CMake
 * copies):
 *
 *   llva-as        assemble .llva text into virtual object code
 *   llva-dis       disassemble virtual object code back to text
 *   llva-opt       run optimization passes over virtual object code
 *   llva-run       execute a virtual executable under LLEE
 *   llva-translate translate to an I-ISA and print the machine code
 *
 * These mirror the workflow of the paper's Section 4/5 toolchain:
 * static compilers produce virtual object code, LLEE executes it
 * (with optional offline caching), and the translator's output can
 * be inspected per target.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "bytecode/bytecode.h"
#include "codegen/codegen.h"
#include "llee/checkpoint.h"
#include "llee/envelope.h"
#include "llee/llee.h"
#include "support/hashing.h"
#include "parser/parser.h"
#include "support/statistic.h"
#include "support/thread_pool.h"
#include "trace/trace.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"

using namespace llva;

namespace {

/** Registered target names joined with a separator, for usage text
 *  and --list-targets (the registry is the single source of truth —
 *  a new backend shows up here without touching the tools). */
std::string
targetList(const char *sep)
{
    std::string out;
    for (const std::string &n : targetNames()) {
        if (!out.empty())
            out += sep;
        out += n;
    }
    return out;
}

[[noreturn]] void
usage()
{
    std::string targets = targetList("|");
    std::fprintf(stderr, R"(usage:
  llva-as  <input.llva> -o <out.bc>         assemble text to object code
  llva-dis <input.bc>  [-o <out.llva>]      disassemble object code
  llva-opt <input.bc>  -O<0|1|2> -o <out.bc> optimize object code
                       [-time-passes] [-stats] [-opt-bisect-limit=N]
  llva-run <input.bc>  [--target %s] [--cache DIR] [--interp]
                       [--entry NAME] [-O<0|1|2>] [-j N] [-stats]
                       [--adaptive] [--watermark N] [-print-traces]
                       [--dispatch switch|threaded]
                       [--profile-sample N]
                       [--checkpoint FILE] [--restore FILE]
                       [--pause-at N]
                       [-verify-each] [-opt-bisect-limit=N]
                                             execute under LLEE
  llva-run --list-targets                   print registered targets
  llva-translate <input.bc> [--target %s] [--local-alloc]
                       [--no-coalesce] [-O<0|1|2>] [-j N] [-stats]
                       [-print-traces] [-verify-each]
                       [-opt-bisect-limit=N]
                                             print machine code
  llva-translate --list-targets             print registered targets
  llva-translate --verify-cache <dir> [--repair]
                                             audit a translation cache:
                                             report corrupt/incompatible
                                             entries; --repair deletes them

  -j N          translate with N worker threads (0 = all cores);
                parallel output is byte-identical to serial
  -stats        print pipeline statistic counters to stderr
  -time-passes  print per-pass wall-clock timing to stderr
  -verify-each  run the IR verifier after every pass and name the
                first pass that broke the module
  -opt-bisect-limit=N
                run only the first N passes (a deterministic global
                counter, printed per pass to stderr); bisect N to
                localize a miscompiling pass. -1 = no limit
  --adaptive    profile at runtime and promote hot functions to the
                -O2+traces tier (with --cache the profile and the
                promoted translations persist across runs)
  --watermark N promote a function once its profile accumulates N
                block samples (default 5000; implies nothing
                without --adaptive)
  --dispatch switch|threaded
                inner-loop dispatch of the simulated processor:
                legacy switch, or direct-threaded handlers with
                chained trace-tier superblocks (default)
  --profile-sample N
                record every Nth profile event with weight N
                (default 1 = exact counting)
  --checkpoint FILE
                capture the whole VM — heap, registers, OS state,
                code-cache index, profile — into FILE after the run
                (or mid-run with --pause-at), sealed and restorable
                in a fresh process
  --restore FILE
                rebuild the VM from FILE and resume (or run the
                entry); under a different --target the checkpointed
                code heals by retranslation and a carried profile
                re-promotes immediately
  --pause-at N  pause after N simulated instructions, so a
                --checkpoint captures the suspended activation
                (resumable same-target only; cross-ISA migration
                needs a quiescent checkpoint)
  -print-traces print formed hot traces to stderr (llva-run: at each
                promotion; llva-translate: after a profiling
                interpreter run, and lay blocks out trace-first)
)",
                 targets.c_str(), targets.c_str());
    std::exit(2);
}

/** `--list-targets`: one registered target per line. */
[[noreturn]] void
listTargets()
{
    std::printf("%s\n", targetList("\n").c_str());
    std::exit(0);
}

/** Parse `-j N`-style worker counts (0 means every core). */
unsigned
parseJobs(const std::string &arg)
{
    unsigned n = static_cast<unsigned>(std::stoul(arg));
    return n == 0 ? defaultJobs() : n;
}

/** Recognize `-opt-bisect-limit=N` and arm the global bisector. */
bool
acceptBisectLimit(const std::string &arg)
{
    const std::string prefix = "-opt-bisect-limit=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    OptBisect::setLimit(std::stoi(arg.substr(prefix.size())));
    return true;
}

std::string
readFileText(const std::string &path)
{
    std::ifstream f(path, std::ios::binary);
    if (!f)
        fatal("cannot open '%s'", path.c_str());
    std::ostringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::string s = readFileText(path);
    return std::vector<uint8_t>(s.begin(), s.end());
}

void
writeFileBytes(const std::string &path,
               const std::vector<uint8_t> &bytes)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("cannot write '%s'", path.c_str());
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/** Load a module from .llva text or .bc object code by sniffing. */
std::unique_ptr<Module>
loadModule(const std::string &path)
{
    auto bytes = readFileBytes(path);
    if (bytes.size() >= 4 && bytes[0] == 'L' && bytes[1] == 'L' &&
        bytes[2] == 'V' && bytes[3] == 'A')
        return readBytecode(bytes).orDie();
    return parseAssembly(std::string(bytes.begin(), bytes.end()),
                         path)
        .orDie();
}

int
toolAs(const std::vector<std::string> &args)
{
    std::string input, output;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "-o" && i + 1 < args.size())
            output = args[++i];
        else
            input = args[i];
    }
    if (input.empty() || output.empty())
        usage();
    auto m = parseAssembly(readFileText(input), input).orDie();
    verifyOrDie(*m);
    auto bytes = writeBytecode(*m);
    writeFileBytes(output, bytes);
    std::printf("%s: %zu LLVA instructions -> %zu bytes\n",
                output.c_str(), m->instructionCount(), bytes.size());
    return 0;
}

int
toolDis(const std::vector<std::string> &args)
{
    std::string input, output;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "-o" && i + 1 < args.size())
            output = args[++i];
        else
            input = args[i];
    }
    if (input.empty())
        usage();
    auto m = readBytecode(readFileBytes(input)).orDie();
    std::string text = m->str();
    if (output.empty()) {
        std::fputs(text.c_str(), stdout);
    } else {
        std::ofstream f(output);
        f << text;
    }
    return 0;
}

int
toolOpt(const std::vector<std::string> &args)
{
    std::string input, output;
    unsigned level = 2;
    bool timePasses = false, printStats = false;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "-o" && i + 1 < args.size())
            output = args[++i];
        else if (args[i] == "-time-passes")
            timePasses = true;
        else if (args[i] == "-stats")
            printStats = true;
        else if (acceptBisectLimit(args[i]))
            ;
        else if (args[i].rfind("-O", 0) == 0)
            level = static_cast<unsigned>(
                std::stoul(args[i].substr(2)));
        else
            input = args[i];
    }
    if (input.empty() || output.empty())
        usage();
    auto m = loadModule(input);
    verifyOrDie(*m);
    size_t before = m->instructionCount();
    PassManager pm;
    pm.setVerifyEach(true);
    addStandardPasses(pm, level);
    pm.run(*m);
    auto bytes = writeBytecode(*m);
    writeFileBytes(output, bytes);
    std::printf("O%u: %zu -> %zu LLVA instructions;", level, before,
                m->instructionCount());
    for (const auto &p : pm.changedPasses())
        std::printf(" %s", p.c_str());
    std::printf("\n");
    if (timePasses)
        std::fputs(pm.timingReport().c_str(), stderr);
    if (printStats)
        std::fputs(stats::report().c_str(), stderr);
    return 0;
}

/**
 * Checkpoint-mode execution for llva-run. `--checkpoint FILE`
 * captures the VM image (heap, registers, OS state, code-cache
 * index, edge profile — and, with `--pause-at N`, the suspended
 * activation after N instructions) into FILE after the run.
 * `--restore FILE` rebuilds the VM from such an image — possibly
 * under a different --target, where wrong-ISA code classifies
 * Incompatible and heals by retranslation — then resumes the
 * suspended activation or runs the entry afresh. Both modes need
 * the original program, for the IR and the identifying hash.
 */
int
runCheckpointMode(const std::string &input, Target &t,
                  const std::string &entry, CodeGenOptions opts,
                  const std::string &saveTo,
                  const std::string &loadFrom, uint64_t pauseAt,
                  bool printStats)
{
    auto m = loadModule(input);
    verifyOrDie(*m);
    uint64_t hash = fnv1a(writeBytecode(*m));

    ExecutionContext ctx(*m);
    CodeManager cm(t, opts);
    EdgeProfile profile;
    if (opts.adaptive)
        cm.setAdaptive(&profile, opts.promoteWatermark);
    MachineSimulator sim(ctx, cm);
    if (opts.adaptive)
        sim.setProfile(&profile);

    ExecResult r{};
    if (!loadFrom.empty()) {
        auto blob = readFileBytes(loadFrom);
        auto st =
            restoreCheckpoint(blob, hash, ctx, cm,
                              opts.adaptive ? &profile : nullptr,
                              &sim);
        if (!st.ok())
            fatal("restore '%s': %s", loadFrom.c_str(),
                  st.error().message().c_str());
        std::fprintf(stderr,
                     "llva-run: restored %zu translation(s), %zu "
                     "incompatible (retranslated on demand), "
                     "profile %s, %s\n",
                     st->codeRestored, st->codeIncompatible,
                     st->profileRestored ? "carried" : "absent",
                     st->suspended ? "resuming mid-run"
                                   : "running entry");
        if (pauseAt)
            sim.setPauseAt(pauseAt);
        r = st->suspended ? sim.resume()
                          : sim.run(m->getFunction(entry));
    } else {
        if (pauseAt)
            sim.setPauseAt(pauseAt);
        r = sim.run(m->getFunction(entry));
    }

    if (!saveTo.empty()) {
        auto blob = captureCheckpoint(
            hash, ctx, cm, opts.adaptive ? &profile : nullptr,
            sim.paused() ? &sim : nullptr);
        writeFileBytes(saveTo, blob);
        std::fprintf(stderr, "llva-run: wrote %s (%zu bytes%s)\n",
                     saveTo.c_str(), blob.size(),
                     sim.paused() ? ", suspended mid-run" : "");
    }
    std::fputs(ctx.output().c_str(), stdout);
    if (printStats)
        std::fputs(stats::report().c_str(), stderr);
    if (sim.paused())
        return 0; // suspended: no final value yet
    if (r.trap != TrapKind::None) {
        std::fprintf(stderr, "llva-run: trap: %s\n",
                     trapKindName(r.trap));
        return 100;
    }
    return static_cast<int>(r.value.i);
}

int
toolRun(const std::vector<std::string> &args)
{
    std::string input, target = "sparc", cache, entry = "main";
    std::string checkpointOut, restoreIn;
    uint64_t pauseAt = 0;
    bool interp = false, printStats = false;
    CodeGenOptions opts;
    unsigned jobs = 1;
    auto dispatch = MachineSimulator::Dispatch::Threaded;
    uint64_t sampleInterval = 1;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--target" && i + 1 < args.size())
            target = args[++i];
        else if (args[i] == "--list-targets")
            listTargets();
        else if (args[i] == "--cache" && i + 1 < args.size())
            cache = args[++i];
        else if (args[i] == "--entry" && i + 1 < args.size())
            entry = args[++i];
        else if (args[i] == "--interp")
            interp = true;
        else if (args[i] == "--adaptive")
            opts.adaptive = true;
        else if (args[i] == "--watermark" && i + 1 < args.size())
            opts.promoteWatermark =
                std::strtoull(args[++i].c_str(), nullptr, 10);
        else if (args[i] == "--dispatch" && i + 1 < args.size()) {
            const std::string &d = args[++i];
            if (d == "switch")
                dispatch = MachineSimulator::Dispatch::Switch;
            else if (d == "threaded")
                dispatch = MachineSimulator::Dispatch::Threaded;
            else
                fatal("unknown dispatch '%s'", d.c_str());
        } else if (args[i] == "--profile-sample" &&
                   i + 1 < args.size())
            sampleInterval =
                std::strtoull(args[++i].c_str(), nullptr, 10);
        else if (args[i] == "--checkpoint" && i + 1 < args.size())
            checkpointOut = args[++i];
        else if (args[i] == "--restore" && i + 1 < args.size())
            restoreIn = args[++i];
        else if (args[i] == "--pause-at" && i + 1 < args.size())
            pauseAt = std::strtoull(args[++i].c_str(), nullptr, 10);
        else if (args[i] == "-print-traces")
            opts.printTraces = true;
        else if (args[i] == "-j" && i + 1 < args.size())
            jobs = parseJobs(args[++i]);
        else if (args[i] == "-stats")
            printStats = true;
        else if (args[i] == "-verify-each")
            opts.verifyEach = true;
        else if (acceptBisectLimit(args[i]))
            ;
        else if (args[i].rfind("-O", 0) == 0)
            opts.optLevel = static_cast<uint8_t>(
                std::stoul(args[i].substr(2)));
        else
            input = args[i];
    }
    if (input.empty())
        usage();

    // Checkpoint/restore bypass LLEE's storage pipeline: they build
    // the VM by hand so the code manager and simulator are at hand
    // for capture/restore.
    if (!checkpointOut.empty() || !restoreIn.empty())
        return runCheckpointMode(input, *getTarget(target), entry,
                                 opts, checkpointOut, restoreIn,
                                 pauseAt, printStats);

    if (interp) {
        auto m = loadModule(input);
        verifyOrDie(*m);
        ExecutionContext ctx(*m);
        Interpreter engine(ctx);
        auto r = engine.run(m->getFunction(entry));
        std::fputs(ctx.output().c_str(), stdout);
        if (r.trap != TrapKind::None) {
            std::fprintf(stderr, "\nllva-run: trap: %s\n",
                         trapKindName(r.trap));
            return 100;
        }
        return static_cast<int>(r.value.i);
    }

    // getTarget fails with the registry-driven known-target list.
    Target *t = getTarget(target);
    std::unique_ptr<FileStorage> storage;
    if (!cache.empty())
        storage = std::make_unique<FileStorage>(cache);
    LLEE llee(*t, storage.get(), opts);
    llee.setJobs(jobs);
    llee.setDispatch(dispatch);
    llee.setProfileSampleInterval(sampleInterval);
    auto bytes = readFileBytes(input);
    if (!(bytes.size() >= 4 && bytes[0] == 'L'))
        bytes = writeBytecode(*loadModule(input));
    LLEEResult r = llee.execute(bytes, entry);
    std::fputs(r.output.c_str(), stdout);
    std::fprintf(stderr,
                 "\nllva-run: %zu cache hits, %zu misses, "
                 "%.3f ms online translation, %llu machine "
                 "instructions\n",
                 r.cacheHits, r.cacheMisses,
                 r.onlineTranslateSeconds * 1000.0,
                 (unsigned long long)r.machineInstructionsExecuted);
    if (r.tierDowngrades || r.functionsInterpreted)
        std::fprintf(stderr,
                     "llva-run: %zu tier downgrades, %zu functions "
                     "pinned to the interpreter\n",
                     r.tierDowngrades, r.functionsInterpreted);
    if (opts.adaptive)
        std::fprintf(stderr,
                     "llva-run: %zu promotions to -O%u+traces "
                     "(%zu failed), %llu profile samples, %.1f%% "
                     "trace coverage, %zu trace-tier translations "
                     "reloaded\n",
                     r.promotions, unsigned(opts.optLevel),
                     r.promotionFailures,
                     (unsigned long long)r.profileSamples,
                     r.traceCoverage * 100.0, r.traceTierLoaded);
    if (printStats)
        std::fputs(stats::report().c_str(), stderr);
    if (r.exec.trap != TrapKind::None) {
        std::fprintf(stderr, "llva-run: trap: %s\n",
                     trapKindName(r.exec.trap));
        return 100;
    }
    return static_cast<int>(r.exec.value.i);
}

/**
 * `llva-translate --verify-cache <dir> [--repair]`: audit every
 * entry of an on-disk translation cache through the same envelope
 * check LLEE applies at load time. Reports per-entry status; with
 * --repair, corrupt and incompatible entries are deleted so the
 * next run retranslates them. Exit status 1 if bad entries remain.
 */
int
verifyCache(const std::string &dir, bool repair)
{
    FileStorage storage(dir);
    const std::string cache = "llee-native-cache";
    size_t ok = 0, bad = 0, repaired = 0, skipped = 0;
    for (const std::string &name : storage.list(cache)) {
        // Profiles are plain text keyed alongside translations, not
        // enveloped machine code; they are not auditable here.
        if (name.size() >= 8 &&
            name.compare(name.size() - 8, 8, ".profile") == 0) {
            ++skipped;
            continue;
        }
        std::vector<uint8_t> bytes;
        if (!storage.read(cache, name, bytes)) {
            std::printf("%-12s %s\n", "unreadable", name.c_str());
            ++bad;
            continue;
        }
        EnvelopeStatus st = inspectTranslation(bytes);
        if (st == EnvelopeStatus::Ok) {
            ++ok;
            continue;
        }
        if (repair && storage.remove(cache, name)) {
            std::printf("%-12s %s (deleted)\n",
                        envelopeStatusName(st), name.c_str());
            ++repaired;
        } else {
            std::printf("%-12s %s\n", envelopeStatusName(st),
                        name.c_str());
            ++bad;
        }
    }
    std::printf("verify-cache: %zu ok, %zu bad, %zu repaired, "
                "%zu skipped\n",
                ok, bad, repaired, skipped);
    return bad ? 1 : 0;
}

int
toolTranslate(const std::vector<std::string> &args)
{
    std::string input, target = "sparc", verifyDir;
    CodeGenOptions opts;
    unsigned jobs = 1;
    bool printStats = false, repair = false;
    for (size_t i = 0; i < args.size(); ++i) {
        if (args[i] == "--target" && i + 1 < args.size())
            target = args[++i];
        else if (args[i] == "--list-targets")
            listTargets();
        else if (args[i] == "--verify-cache" && i + 1 < args.size())
            verifyDir = args[++i];
        else if (args[i] == "--repair")
            repair = true;
        else if (args[i] == "--local-alloc")
            opts.allocator = CodeGenOptions::Allocator::Local;
        else if (args[i] == "--no-coalesce")
            opts.coalesce = false;
        else if (args[i] == "-print-traces")
            opts.printTraces = true;
        else if (args[i] == "-j" && i + 1 < args.size())
            jobs = parseJobs(args[++i]);
        else if (args[i] == "-stats")
            printStats = true;
        else if (args[i] == "-verify-each")
            opts.verifyEach = true;
        else if (acceptBisectLimit(args[i]))
            ;
        else if (args[i].rfind("-O", 0) == 0)
            opts.optLevel = static_cast<uint8_t>(
                std::stoul(args[i].substr(2)));
        else
            input = args[i];
    }
    if (!verifyDir.empty())
        return verifyCache(verifyDir, repair);
    if (input.empty())
        usage();
    // getTarget fails with the registry-driven known-target list.
    Target *t = getTarget(target);
    auto m = loadModule(input);
    verifyOrDie(*m);

    // Apply the per-function optimization pipeline the online
    // translator would run at this -O level, with the same
    // localization aids (-verify-each, -opt-bisect-limit).
    if (opts.optLevel > 0 || opts.verifyEach ||
        OptBisect::enabled()) {
        PassManager pm;
        pm.setVerifyEach(opts.verifyEach);
        addFunctionPasses(pm, opts.optLevel);
        pm.run(*m);
    }

    // -print-traces: gather an edge profile by interpreting the
    // (already optimized) module once, form hot traces per function,
    // print them to stderr, and apply the trace-first layout so the
    // listing below is the code the adaptive tier would install.
    if (opts.printTraces) {
        EdgeProfile profile;
        {
            ExecutionContext ctx(*m);
            Interpreter profiler(ctx);
            profiler.setProfile(&profile);
            profiler.setInstructionLimit(100000000);
            profiler.run(m->getFunction("main"));
        }
        for (const auto &f : m->functions()) {
            if (f->isDeclaration())
                continue;
            auto traces = formTraces(*f, profile);
            for (const Trace &tr : traces) {
                std::fprintf(stderr, "trace: %s:",
                             f->name().c_str());
                for (const BasicBlock *bb : tr.blocks)
                    std::fprintf(stderr, " %s",
                                 bb->name().c_str());
                std::fprintf(stderr, " (head count %llu)\n",
                             (unsigned long long)tr.headCount);
            }
            applyTraceLayout(*f, traces);
        }
    }

    std::vector<const Function *> fns;
    for (const auto &f : m->functions())
        if (!f->isDeclaration())
            fns.push_back(f.get());

    // Translate on worker threads into index-addressed slots, then
    // print serially in module order: `-j 8` output is
    // byte-identical to `-j 1`.
    struct Listing
    {
        std::string text;
        size_t llvaCount = 0, nativeCount = 0, byteCount = 0;
    };
    std::vector<Listing> listings(fns.size());
    parallelFor(fns.size(), jobs, [&](size_t i) {
        const Function &f = *fns[i];
        auto mf = translateFunction(f, *t, opts);
        auto enc = encodeFunction(*mf, *t);
        Listing &l = listings[i];
        l.text = machineFunctionToString(*mf, *t);
        l.llvaCount = f.instructionCount();
        l.nativeCount = mf->instructionCount();
        l.byteCount = enc.size();
    });

    size_t llva_total = 0, native_total = 0, bytes_total = 0;
    for (const Listing &l : listings) {
        std::fputs(l.text.c_str(), stdout);
        std::printf("; %zu LLVA -> %zu %s instructions, %zu "
                    "bytes\n\n",
                    l.llvaCount, l.nativeCount, target.c_str(),
                    l.byteCount);
        llva_total += l.llvaCount;
        native_total += l.nativeCount;
        bytes_total += l.byteCount;
    }
    std::printf("total: %zu LLVA -> %zu %s instructions "
                "(ratio %.2f), %zu bytes\n",
                llva_total, native_total, target.c_str(),
                llva_total
                    ? static_cast<double>(native_total) / llva_total
                    : 0.0,
                bytes_total);
    if (printStats)
        std::fputs(stats::report().c_str(), stderr);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    // Tool selection: argv[0] basename, or first argument.
    std::string name = argv[0];
    auto slash = name.find_last_of('/');
    if (slash != std::string::npos)
        name = name.substr(slash + 1);

    std::vector<std::string> args(argv + 1, argv + argc);
    if (name == "llva-tools" || name == "llva_tools") {
        if (args.empty())
            usage();
        name = "llva-" + args.front();
        args.erase(args.begin());
    }

    try {
        if (name == "llva-as")
            return toolAs(args);
        if (name == "llva-dis")
            return toolDis(args);
        if (name == "llva-opt")
            return toolOpt(args);
        if (name == "llva-run")
            return toolRun(args);
        if (name == "llva-translate")
            return toolTranslate(args);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "%s: error: %s\n", name.c_str(),
                     e.what());
        return 1;
    }
    usage();
}
